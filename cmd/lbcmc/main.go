// Command lbcmc runs a randomized Monte Carlo robustness sweep: repeated
// consensus executions with random inputs, random fault placements, and a
// random strategy (silent / tamper / equivocate / forge) per trial, all
// reproducible from a seed. Trials run in parallel on a bounded worker
// pool; each trial derives its randomness from its own seed, so results
// are identical whatever the worker count. On graphs satisfying the
// paper's conditions the expected tally is trials/trials.
//
// With -batch B, trials execute in multiplexed groups of B through the
// batched multi-instance engine (one shared round loop and topology
// analysis per group) — the high-throughput path. Verdicts are identical
// to independent trials; only wall-clock time changes.
//
// With -churn {churn,partition,burst}, every trial additionally receives a
// seeded fault-injection schedule (random link flaps, a random partition,
// or a correlated crash burst) applied at round boundaries. Trials whose
// injected world drops below the paper's connectivity thresholds count as
// degraded — the expected failure of an infeasible world — never as
// violations.
//
// Usage:
//
//	lbcmc -graph figure1a -f 1 -trials 50 -seed 7
//	lbcmc -graph circulant:8:1,2 -f 2 -faults 1 -algorithm 2 -trials 25
//	lbcmc -graph figure1a -trials 100 -workers 4 -json
//	lbcmc -graph figure1b -f 2 -trials 256 -batch 16
//	lbcmc -graph figure1b -f 2 -trials 64 -churn partition -churnstart 4 -json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"lbcast/internal/adversary"
	"lbcast/internal/cliutil"
	"lbcast/internal/eval"
	"lbcast/internal/flood"
	"lbcast/internal/graph"
	"lbcast/internal/graph/gen"
)

func main() {
	// SIGINT/SIGTERM cancel the sweep instead of killing the process: the
	// completed trials still flush (JSON marked "canceled"), so a long
	// interrupted sweep leaves a usable partial record.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lbcmc:", err)
		os.Exit(1)
	}
}

// mcJSON is the machine-readable sweep summary.
type mcJSON struct {
	Graph     string `json:"graph"`
	Algorithm string `json:"algorithm"`
	F         int    `json:"f"`
	Trials    int    `json:"trials"`
	Seed      int64  `json:"seed"`
	// Faults, FaultProb and Batch complete the reproduction record: the
	// first two affect per-trial derivation; Batch never affects
	// verdicts but is recorded for exact re-runs.
	Faults    int     `json:"faults,omitempty"`
	FaultProb float64 `json:"fault_prob,omitempty"`
	Batch     int     `json:"batch,omitempty"`
	// Churn* record the fault-injection profile (reproduction record) —
	// present only when a profile was active.
	ChurnKind   string  `json:"churn_kind,omitempty"`
	ChurnProb   float64 `json:"churn_prob,omitempty"`
	ChurnEvtCnt int     `json:"churn_profile_events,omitempty"`
	ChurnStart  int     `json:"churn_start,omitempty"`
	ChurnSpan   int     `json:"churn_span,omitempty"`
	// Per-verdict-class counts: OK + Degraded + ViolationCount = Trials.
	// Degraded counts failed trials excused because injection pushed the
	// world below the paper's thresholds.
	OK             int `json:"ok"`
	Degraded       int `json:"degraded,omitempty"`
	ViolationCount int `json:"violation_count,omitempty"`
	// The plan_* counters are the propagation-plan deltas accumulated
	// over the sweep (this process's global counters sampled before and
	// after): benign and masked compiles, sessions served by wholesale
	// (benign or masked) replay, sessions served by delta replay around
	// value-faulty slots, and fully dynamic sessions. ReplayHitRate is
	// (replay + delta) / (replay + delta + dynamic); present whenever any
	// phase-node flooding session was counted.
	PlanCompiles        int64    `json:"plan_compiles,omitempty"`
	PlanMaskedCompiles  int64    `json:"plan_masked_compiles,omitempty"`
	PlanReplaySessions  int64    `json:"plan_replay_sessions,omitempty"`
	PlanDeltaReplays    int64    `json:"plan_delta_replays,omitempty"`
	PlanDynamicSessions int64    `json:"plan_dynamic_sessions,omitempty"`
	ReplayHitRate       *float64 `json:"replay_hit_rate,omitempty"`
	// ChurnEvents / PlanInvalidations are the fault-injection deltas over
	// the sweep: topology events applied at round boundaries, and
	// replay-qualified runs whose compiled-plan replay a schedule cut back
	// to the taint frontier (or abandoned).
	ChurnEvents       int64 `json:"churn_events,omitempty"`
	PlanInvalidations int64 `json:"plan_invalidations,omitempty"`
	// TrialPoolHits / AdversaryReuses are the trial-scaffolding deltas
	// over the sweep: scratch-pool hits (recycled RNG + input slab +
	// fault-list bundles) and adversary instances re-armed through the
	// strategy pools instead of constructed.
	TrialPoolHits   int64 `json:"trial_pool_hits,omitempty"`
	AdversaryReuses int64 `json:"adversary_reuses,omitempty"`
	// Canceled marks a sweep interrupted by SIGINT/SIGTERM: OK and
	// Violations cover only the trials that completed before the signal.
	Canceled   bool              `json:"canceled,omitempty"`
	Violations []mcViolationJSON `json:"violations,omitempty"`
}

type mcViolationJSON struct {
	Trial    int            `json:"trial"`
	Faulty   []graph.NodeID `json:"faulty"`
	Strategy string         `json:"strategy"`
	Outcome  eval.Outcome   `json:"outcome"`
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lbcmc", flag.ContinueOnError)
	spec := fs.String("graph", "figure1a", "graph spec")
	f := fs.Int("f", 1, "fault bound f")
	faults := fs.Int("faults", 0, "planted faults per trial (default f)")
	algo := fs.Int("algorithm", 1, "algorithm: 1 (tight) or 2 (efficient)")
	trials := fs.Int("trials", 25, "number of trials")
	seed := fs.Int64("seed", 1, "sweep seed")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); never affects results")
	batch := fs.Int("batch", 0, "batch size: run trials in multiplexed groups of this size through the multi-instance engine (0/1 = independent trials); never affects results")
	faultProb := fs.Float64("faultprob", 0, "probability a trial is adversarial (0 or 1 = every trial plants -faults faults)")
	churnKind := fs.String("churn", "", "fault-injection profile: churn, partition, or burst (empty = static worlds)")
	churnProb := fs.Float64("churnprob", 0, "probability a trial receives an injection schedule (0 or 1 = every trial)")
	churnEvents := fs.Int("churnevents", 0, "injected link flaps (churn) or crash victims (burst); default max(1, f)")
	churnStart := fs.Int("churnstart", 0, "first round injection events may land on")
	churnSpan := fs.Int("churnspan", 0, "injection window length in rounds (default one phase; burst: 0 = no recovery)")
	strategies := fs.String("strategies", "", "comma-separated adversary strategies to draw from (default silent,tamper,equivocate,forge; adaptive is opt-in)")
	jsonOut := fs.Bool("json", false, "emit JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := gen.ParseSpec(*spec)
	if err != nil {
		return err
	}
	var alg eval.Algorithm
	switch *algo {
	case 1:
		alg = eval.Algo1
	case 2:
		alg = eval.Algo2
	default:
		return fmt.Errorf("unknown algorithm %d", *algo)
	}
	var strategyList []string
	if *strategies != "" {
		strategyList = strings.Split(*strategies, ",")
	}
	planBefore := flood.ReadPlanStats()
	trialHitsBefore, _ := eval.ReadTrialPoolStats()
	reusesBefore := adversary.ReadRecycleStats()
	churnEvtBefore, invalBefore := eval.ReadChurnStats()
	res, err := eval.MonteCarloContext(ctx, eval.MonteCarloConfig{
		G:          g,
		F:          *f,
		Faults:     *faults,
		Algorithm:  alg,
		Trials:     *trials,
		Seed:       *seed,
		Workers:    *workers,
		Batch:      *batch,
		FaultProb:  *faultProb,
		Strategies: strategyList,
		ChurnProfile: eval.ChurnProfile{
			Kind:   *churnKind,
			Prob:   *churnProb,
			Events: *churnEvents,
			Start:  *churnStart,
			Span:   *churnSpan,
		},
	})
	// An interrupt is not a protocol failure: flush what completed, marked
	// canceled, and report the interruption through the exit status.
	canceled := err != nil && ctx.Err() != nil && errors.Is(err, context.Canceled)
	if err != nil && !canceled {
		return err
	}
	planAfter := flood.ReadPlanStats()
	trialHitsAfter, _ := eval.ReadTrialPoolStats()
	reusesAfter := adversary.ReadRecycleStats()
	churnEvtAfter, invalAfter := eval.ReadChurnStats()
	if *jsonOut {
		out := mcJSON{
			Graph:               g.String(),
			Algorithm:           alg.String(),
			F:                   *f,
			Trials:              res.Trials,
			Seed:                *seed,
			Faults:              *faults,
			FaultProb:           *faultProb,
			Batch:               *batch,
			ChurnKind:           *churnKind,
			ChurnProb:           *churnProb,
			ChurnEvtCnt:         *churnEvents,
			ChurnStart:          *churnStart,
			ChurnSpan:           *churnSpan,
			OK:                  res.OK,
			Degraded:            res.Degraded,
			ViolationCount:      len(res.Violations),
			PlanCompiles:        planAfter.Compiles - planBefore.Compiles,
			PlanMaskedCompiles:  planAfter.MaskedCompiles - planBefore.MaskedCompiles,
			PlanReplaySessions:  planAfter.ReplaySessions - planBefore.ReplaySessions,
			PlanDeltaReplays:    planAfter.DeltaReplaySessions - planBefore.DeltaReplaySessions,
			PlanDynamicSessions: planAfter.DynamicSessions - planBefore.DynamicSessions,
			ChurnEvents:         int64(churnEvtAfter - churnEvtBefore),
			PlanInvalidations:   int64(invalAfter - invalBefore),
			TrialPoolHits:       int64(trialHitsAfter - trialHitsBefore),
			AdversaryReuses:     int64(reusesAfter - reusesBefore),
			Canceled:            canceled,
		}
		served := out.PlanReplaySessions + out.PlanDeltaReplays
		if total := served + out.PlanDynamicSessions; total > 0 {
			rate := float64(served) / float64(total)
			out.ReplayHitRate = &rate
		}
		for _, v := range res.Violations {
			out.Violations = append(out.Violations, mcViolationJSON{
				Trial: v.Trial, Faulty: v.Faulty, Strategy: v.Strategy, Outcome: v.Outcome,
			})
		}
		if err := cliutil.WriteJSON(w, out); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(w, "graph: %s\nalgorithm=%s f=%d trials=%d seed=%d\n", g, alg, *f, *trials, *seed)
		if canceled {
			fmt.Fprintf(w, "interrupted: consensus held in %d trials completed before the signal\n", res.OK)
		} else {
			fmt.Fprintf(w, "consensus held in %d/%d trials\n", res.OK, res.Trials)
		}
		if res.Degraded > 0 {
			fmt.Fprintf(w, "degraded connectivity excused %d trials (injection below thresholds)\n", res.Degraded)
		}
		for _, v := range res.Violations {
			fmt.Fprintf(w, "VIOLATION trial=%d faulty=%v strategy=%s agreement=%v validity=%v decisions=%v\n",
				v.Trial, v.Faulty, v.Strategy, v.Outcome.Agreement, v.Outcome.Validity, v.Outcome.Decisions)
		}
	}
	if len(res.Violations) > 0 {
		return fmt.Errorf("%d violations observed", len(res.Violations))
	}
	if canceled {
		return fmt.Errorf("interrupted after %d of %d trials", res.OK, res.Trials)
	}
	return nil
}
