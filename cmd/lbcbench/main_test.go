package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunBenchFiltered(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run is slow")
	}
	var buf bytes.Buffer
	if err := run([]string{"-filter", "session/algo2/figure1a"}, &buf); err != nil {
		t.Fatal(err)
	}
	var ms []Measurement
	if err := json.Unmarshal(buf.Bytes(), &ms); err != nil {
		t.Fatalf("json: %v\n%s", err, buf.String())
	}
	if len(ms) != 1 || ms[0].Name != "session/algo2/figure1a" {
		t.Fatalf("measurements = %+v", ms)
	}
	if ms[0].Iterations <= 0 || ms[0].NsPerOp <= 0 {
		t.Fatalf("empty measurement: %+v", ms[0])
	}
}

func TestRunBenchOutFile(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run is slow")
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	var buf bytes.Buffer
	if err := run([]string{"-filter", "session/algo2/figure1a", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ms []Measurement
	if err := json.Unmarshal(data, &ms); err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("measurements = %+v", ms)
	}
}

func TestRunBenchUnknownFilter(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-filter", "no-such-workload"}, &buf); err == nil {
		t.Fatal("unmatched filter accepted")
	}
}

func TestWorkloadNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, wl := range workloads() {
		if seen[wl.name] {
			t.Fatalf("duplicate workload %q", wl.name)
		}
		seen[wl.name] = true
	}
}
