package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBenchFiltered(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run is slow")
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-filter", "session/algo2/figure1a"}, &buf); err != nil {
		t.Fatal(err)
	}
	var ms []Measurement
	if err := json.Unmarshal(buf.Bytes(), &ms); err != nil {
		t.Fatalf("json: %v\n%s", err, buf.String())
	}
	if len(ms) != 1 || ms[0].Name != "session/algo2/figure1a" {
		t.Fatalf("measurements = %+v", ms)
	}
	if ms[0].Iterations <= 0 || ms[0].NsPerOp <= 0 {
		t.Fatalf("empty measurement: %+v", ms[0])
	}
}

func TestRunBenchOutFile(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run is slow")
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-filter", "session/algo2/figure1a", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ms []Measurement
	if err := json.Unmarshal(data, &ms); err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("measurements = %+v", ms)
	}
}

func TestRunBenchUnknownFilter(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-filter", "no-such-workload"}, &buf); err == nil {
		t.Fatal("unmatched filter accepted")
	}
}

// TestRunBenchServingSmoke runs one serving workload end to end: the full
// daemon decide path must measure, report decisions_per_sec, and record a
// replay hit rate of 1 on the benign request mix.
func TestRunBenchServingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run is slow")
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-filter", "serving/decide/figure1b/B16-single"}, &buf); err != nil {
		t.Fatal(err)
	}
	var ms []Measurement
	if err := json.Unmarshal(buf.Bytes(), &ms); err != nil {
		t.Fatalf("json: %v\n%s", err, buf.String())
	}
	if len(ms) != 1 {
		t.Fatalf("measurements = %+v", ms)
	}
	m := ms[0]
	if m.Instances != 16 || m.DecisionsPerSec <= 0 {
		t.Fatalf("serving throughput not recorded: %+v", m)
	}
	if m.ReplayHitRate == nil || *m.ReplayHitRate != 1 {
		t.Fatalf("benign serving traffic should replay plans exclusively: %+v", m)
	}
}

// TestRunBenchInterrupted pins the signal path: a canceled context flushes
// the (empty) partial suite and reports the interruption.
func TestRunBenchInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := run(ctx, nil, &buf)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interruption report", err)
	}
}

func TestWorkloadNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, wl := range workloads() {
		if seen[wl.name] {
			t.Fatalf("duplicate workload %q", wl.name)
		}
		seen[wl.name] = true
	}
}

func TestCheckAllocsGate(t *testing.T) {
	ms := []Measurement{
		{Name: "a", AllocsPerOp: 100},
		{Name: "b", AllocsPerOp: 116}, // 16% over budget 100
	}
	var buf bytes.Buffer
	if err := checkAllocs(&buf, ms, allocBudgets{"a": 100}); err != nil {
		t.Fatalf("within budget rejected: %v", err)
	}
	if err := checkAllocs(&buf, ms, allocBudgets{"a": 87}); err != nil {
		t.Fatalf("exactly at +15%% limit rejected: %v", err) // 100 <= 87*1.15 = 100.05
	}
	if err := checkAllocs(&buf, ms, allocBudgets{"b": 100}); err == nil {
		t.Fatal(">15% regression accepted")
	}
	if err := checkAllocs(&buf, ms, allocBudgets{"missing": 10}); err == nil {
		t.Fatal("unmeasured budgeted workload accepted")
	}
}

// TestAllocBudgetsFile pins the checked-in budget file: it must parse and
// every budgeted name must be a real workload, so the CI gate can never
// silently rot.
func TestAllocBudgetsFile(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "alloc_budgets.json"))
	if err != nil {
		t.Fatal(err)
	}
	var budgets allocBudgets
	if err := json.Unmarshal(data, &budgets); err != nil {
		t.Fatal(err)
	}
	if len(budgets) < 3 {
		t.Fatalf("want at least 3 budgeted workloads, have %d", len(budgets))
	}
	names := map[string]bool{}
	for _, wl := range workloads() {
		names[wl.name] = true
	}
	for name, budget := range budgets {
		if !names[name] {
			t.Errorf("budget for unknown workload %q", name)
		}
		if budget <= 0 {
			t.Errorf("non-positive budget for %q", name)
		}
	}
}

// TestLeaderboard drives the -leaderboard mode over two synthetic BENCH
// files: rows are throughput workloads only, grouped by graph family,
// columns in file order, and a workload absent from one file renders a
// placeholder rather than a zero.
func TestLeaderboard(t *testing.T) {
	dir := t.TempDir()
	writeBench := func(name string, ms []Measurement) string {
		data, err := json.Marshal(ms)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := writeBench("BENCH_old.json", []Measurement{
		{Name: "throughput/batch/figure1b/B16", Instances: 16, DecisionsPerSec: 100},
		{Name: "session/algo1/figure1a/early", NsPerOp: 50000}, // no decisions_per_sec: excluded
	})
	cur := writeBench("BENCH_new.json", []Measurement{
		{Name: "throughput/batch/figure1b/B16", Instances: 16, DecisionsPerSec: 400},
		{Name: "throughput/batch/harary/B32", Instances: 32, DecisionsPerSec: 250},
	})
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-leaderboard", old + "," + cur}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"BENCH_old", "BENCH_new",
		"throughput/batch/figure1b/B16", "figure1b", "400.0", "100.0",
		"throughput/batch/harary/B32", "harary", "250.0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("leaderboard missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "session/algo1/figure1a/early") {
		t.Fatalf("non-throughput workload leaked into the leaderboard:\n%s", out)
	}
	// The harary row exists only in the new file; the old column must show
	// the placeholder, not a fabricated number.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "harary/B32") && !strings.Contains(line, "-") {
			t.Fatalf("missing-measurement placeholder absent: %q", line)
		}
	}

	// No throughput measurements at all is an error, not an empty table.
	empty := writeBench("BENCH_empty.json", []Measurement{{Name: "session/x", NsPerOp: 1}})
	if err := run(context.Background(), []string{"-leaderboard", empty}, &buf); err == nil {
		t.Fatal("leaderboard over a file with no throughput workloads accepted")
	}
}

func TestPrintDeltas(t *testing.T) {
	ms := []Measurement{
		{Name: "a", BytesPerOp: 50, NsPerOp: 10},
		{Name: "fresh", BytesPerOp: 1},
	}
	prev := map[string]Measurement{"a": {Name: "a", BytesPerOp: 200, NsPerOp: 30}}
	var buf bytes.Buffer
	printDeltas(&buf, ms, prev)
	out := buf.String()
	for _, want := range []string{"bytes/op 200 -> 50 (4.00x)", "(new workload)"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("delta output missing %q:\n%s", want, out)
		}
	}
}

// TestRunBenchFaultProbSmoke runs the fault-heavy Monte Carlo workload and
// asserts the faulty-world replay tiers carry it: masked plans compiled
// for crash patterns, delta replay sessions for value faults, and a
// replay hit rate of at least 0.95 — the acceptance bar the CI smoke job
// re-asserts on the rendered JSON.
func TestRunBenchFaultProbSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run is slow")
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-filter", "montecarlo/figure1b/faultprob"}, &buf); err != nil {
		t.Fatal(err)
	}
	var ms []Measurement
	if err := json.Unmarshal(buf.Bytes(), &ms); err != nil {
		t.Fatalf("json: %v\n%s", err, buf.String())
	}
	if len(ms) != 1 {
		t.Fatalf("measurements = %+v", ms)
	}
	m := ms[0]
	if m.PlanMaskedCompiles == 0 {
		t.Errorf("no masked plans compiled on the fault-heavy stream: %+v", m)
	}
	if m.PlanDeltaReplays == 0 {
		t.Errorf("no delta replay sessions on the fault-heavy stream: %+v", m)
	}
	if m.ReplayHitRate == nil || *m.ReplayHitRate < 0.95 {
		t.Fatalf("replay hit rate below 0.95 on the fault-heavy stream: %+v", m)
	}
}

// TestMeasurementSchemaPinned pins the exact JSON rendering of a fully
// populated Measurement: downstream tooling greps these keys out of
// BENCH_*.json, so a renamed or reordered field is a breaking change.
func TestMeasurementSchemaPinned(t *testing.T) {
	rate := 0.5
	m := Measurement{
		Name: "w", Iterations: 2, NsPerOp: 1.5, AllocsPerOp: 3, BytesPerOp: 4,
		Instances: 5, DecisionsPerSec: 6.5,
		PlanCompiles: 7, PlanMaskedCompiles: 8, PlanReplaySessions: 9,
		PlanDeltaReplays: 10, PlanDynamicSessions: 11, ReplayHitRate: &rate,
		TrialPoolHits: 12, AdversaryReuses: 13, ChurnEvents: 14, PlanInvalidations: 15,
	}
	got, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"name":"w","iterations":2,"ns_per_op":1.5,"allocs_per_op":3,"bytes_per_op":4,` +
		`"instances":5,"decisions_per_sec":6.5,"plan_compiles":7,"plan_masked_compiles":8,` +
		`"plan_replay_sessions":9,"plan_delta_replays":10,"plan_dynamic_sessions":11,"replay_hit_rate":0.5,` +
		`"trial_pool_hits":12,"adversary_reuses":13,"churn_events":14,"plan_invalidations":15}`
	if string(got) != want {
		t.Fatalf("schema drift:\ngot:  %s\nwant: %s", got, want)
	}
}

// TestRunBenchChurnSmoke runs the fault-injection Monte Carlo workload and
// asserts the churn layer carries it: topology events applied, compiled
// plans invalidated back to the taint frontier, and — because half the
// trials stay static and injected trials still replay their clean prefix —
// a replay hit rate of at least 0.5. The CI smoke job re-asserts these
// floors on the rendered JSON.
func TestRunBenchChurnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run is slow")
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-filter", "montecarlo/figure1b/churn"}, &buf); err != nil {
		t.Fatal(err)
	}
	var ms []Measurement
	if err := json.Unmarshal(buf.Bytes(), &ms); err != nil {
		t.Fatalf("json: %v\n%s", err, buf.String())
	}
	if len(ms) != 1 {
		t.Fatalf("measurements = %+v", ms)
	}
	m := ms[0]
	if m.ChurnEvents == 0 {
		t.Errorf("no topology events applied on the churn stream: %+v", m)
	}
	if m.PlanInvalidations == 0 {
		t.Errorf("no plan invalidations recorded on the churn stream: %+v", m)
	}
	if m.ReplayHitRate == nil || *m.ReplayHitRate < 0.5 {
		t.Fatalf("replay hit rate below 0.5 on the churn stream: %+v", m)
	}
}
