package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBenchFiltered(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run is slow")
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-filter", "session/algo2/figure1a"}, &buf); err != nil {
		t.Fatal(err)
	}
	var ms []Measurement
	if err := json.Unmarshal(buf.Bytes(), &ms); err != nil {
		t.Fatalf("json: %v\n%s", err, buf.String())
	}
	if len(ms) != 1 || ms[0].Name != "session/algo2/figure1a" {
		t.Fatalf("measurements = %+v", ms)
	}
	if ms[0].Iterations <= 0 || ms[0].NsPerOp <= 0 {
		t.Fatalf("empty measurement: %+v", ms[0])
	}
}

func TestRunBenchOutFile(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run is slow")
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-filter", "session/algo2/figure1a", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ms []Measurement
	if err := json.Unmarshal(data, &ms); err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("measurements = %+v", ms)
	}
}

func TestRunBenchUnknownFilter(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-filter", "no-such-workload"}, &buf); err == nil {
		t.Fatal("unmatched filter accepted")
	}
}

// TestRunBenchServingSmoke runs one serving workload end to end: the full
// daemon decide path must measure, report decisions_per_sec, and record a
// replay hit rate of 1 on the benign request mix.
func TestRunBenchServingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark run is slow")
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-filter", "serving/decide/figure1b/B16-single"}, &buf); err != nil {
		t.Fatal(err)
	}
	var ms []Measurement
	if err := json.Unmarshal(buf.Bytes(), &ms); err != nil {
		t.Fatalf("json: %v\n%s", err, buf.String())
	}
	if len(ms) != 1 {
		t.Fatalf("measurements = %+v", ms)
	}
	m := ms[0]
	if m.Instances != 16 || m.DecisionsPerSec <= 0 {
		t.Fatalf("serving throughput not recorded: %+v", m)
	}
	if m.ReplayHitRate == nil || *m.ReplayHitRate != 1 {
		t.Fatalf("benign serving traffic should replay plans exclusively: %+v", m)
	}
}

// TestRunBenchInterrupted pins the signal path: a canceled context flushes
// the (empty) partial suite and reports the interruption.
func TestRunBenchInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := run(ctx, nil, &buf)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interruption report", err)
	}
}

func TestWorkloadNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, wl := range workloads() {
		if seen[wl.name] {
			t.Fatalf("duplicate workload %q", wl.name)
		}
		seen[wl.name] = true
	}
}

func TestCheckAllocsGate(t *testing.T) {
	ms := []Measurement{
		{Name: "a", AllocsPerOp: 100},
		{Name: "b", AllocsPerOp: 116}, // 16% over budget 100
	}
	var buf bytes.Buffer
	if err := checkAllocs(&buf, ms, allocBudgets{"a": 100}); err != nil {
		t.Fatalf("within budget rejected: %v", err)
	}
	if err := checkAllocs(&buf, ms, allocBudgets{"a": 87}); err != nil {
		t.Fatalf("exactly at +15%% limit rejected: %v", err) // 100 <= 87*1.15 = 100.05
	}
	if err := checkAllocs(&buf, ms, allocBudgets{"b": 100}); err == nil {
		t.Fatal(">15% regression accepted")
	}
	if err := checkAllocs(&buf, ms, allocBudgets{"missing": 10}); err == nil {
		t.Fatal("unmeasured budgeted workload accepted")
	}
}

// TestAllocBudgetsFile pins the checked-in budget file: it must parse and
// every budgeted name must be a real workload, so the CI gate can never
// silently rot.
func TestAllocBudgetsFile(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "alloc_budgets.json"))
	if err != nil {
		t.Fatal(err)
	}
	var budgets allocBudgets
	if err := json.Unmarshal(data, &budgets); err != nil {
		t.Fatal(err)
	}
	if len(budgets) < 3 {
		t.Fatalf("want at least 3 budgeted workloads, have %d", len(budgets))
	}
	names := map[string]bool{}
	for _, wl := range workloads() {
		names[wl.name] = true
	}
	for name, budget := range budgets {
		if !names[name] {
			t.Errorf("budget for unknown workload %q", name)
		}
		if budget <= 0 {
			t.Errorf("non-positive budget for %q", name)
		}
	}
}

func TestPrintDeltas(t *testing.T) {
	ms := []Measurement{
		{Name: "a", BytesPerOp: 50, NsPerOp: 10},
		{Name: "fresh", BytesPerOp: 1},
	}
	prev := map[string]Measurement{"a": {Name: "a", BytesPerOp: 200, NsPerOp: 30}}
	var buf bytes.Buffer
	printDeltas(&buf, ms, prev)
	out := buf.String()
	for _, want := range []string{"bytes/op 200 -> 50 (4.00x)", "(new workload)"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("delta output missing %q:\n%s", want, out)
		}
	}
}
