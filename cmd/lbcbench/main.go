// Command lbcbench runs the library's representative benchmark workloads
// via testing.Benchmark and emits the measurements as JSON, so successive
// PRs can track the performance trajectory in checked-in BENCH_*.json
// files without parsing `go test -bench` text output.
//
// Usage:
//
//	lbcbench                      # all workloads, JSON to stdout
//	lbcbench -filter algo1        # substring-filtered workloads
//	lbcbench -out BENCH_session.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"
	"testing"

	"lbcast"
	"lbcast/internal/cliutil"
	"lbcast/internal/eval"
	"lbcast/internal/graph/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lbcbench:", err)
		os.Exit(1)
	}
}

// Measurement is one workload's recorded result.
type Measurement struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// workload binds a benchmark name to its body.
type workload struct {
	name string
	fn   func(b *testing.B)
}

// mustSession builds a session or aborts the benchmark.
func mustSession(b *testing.B, g *lbcast.Graph, opts ...lbcast.Option) *lbcast.Session {
	b.Helper()
	s, err := lbcast.NewSession(g, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// runSession runs the session once and asserts consensus held.
func runSession(b *testing.B, s *lbcast.Session) {
	b.Helper()
	res, err := s.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if !res.OK() {
		b.Fatalf("consensus failed: %+v", res)
	}
}

func alternatingInputs(n int) map[lbcast.NodeID]lbcast.Value {
	m := make(map[lbcast.NodeID]lbcast.Value, n)
	for i := 0; i < n; i++ {
		m[lbcast.NodeID(i)] = lbcast.Value(i % 2)
	}
	return m
}

// workloads returns the benchmark suite. The early/full pair on the same
// instance makes the early-termination speedup directly visible in the
// recorded numbers.
func workloads() []workload {
	return []workload{
		{"session/algo1/figure1a/early", func(b *testing.B) {
			g := lbcast.Figure1a()
			s := mustSession(b, g, lbcast.WithFaults(1), lbcast.WithInputs(alternatingInputs(g.N())))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSession(b, s)
			}
		}},
		{"session/algo1/figure1a/full-budget", func(b *testing.B) {
			g := lbcast.Figure1a()
			s := mustSession(b, g, lbcast.WithFaults(1), lbcast.WithInputs(alternatingInputs(g.N())),
				lbcast.WithFullBudget())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSession(b, s)
			}
		}},
		{"session/algo1/figure1a/tamper", func(b *testing.B) {
			g := lbcast.Figure1a()
			s := mustSession(b, g, lbcast.WithFaults(1), lbcast.WithInputs(alternatingInputs(g.N())),
				lbcast.WithByzantine(map[lbcast.NodeID]lbcast.Node{
					2: lbcast.NewTamperFault(g, 2, lbcast.PhaseRounds(g), 42),
				}))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSession(b, s)
			}
		}},
		{"session/algo1/figure1b/early", func(b *testing.B) {
			g := lbcast.Figure1b()
			s := mustSession(b, g, lbcast.WithFaults(2), lbcast.WithInputs(alternatingInputs(g.N())))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSession(b, s)
			}
		}},
		{"session/algo2/figure1b/tamper", func(b *testing.B) {
			g := lbcast.Figure1b()
			s := mustSession(b, g, lbcast.WithFaults(2), lbcast.WithAlgorithm(lbcast.Algorithm2),
				lbcast.WithInputs(alternatingInputs(g.N())),
				lbcast.WithByzantine(map[lbcast.NodeID]lbcast.Node{
					3: lbcast.NewTamperFault(g, 3, lbcast.PhaseRounds(g), 5),
				}))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSession(b, s)
			}
		}},
		{"session/algo2/figure1a", func(b *testing.B) {
			g := lbcast.Figure1a()
			s := mustSession(b, g, lbcast.WithFaults(1), lbcast.WithAlgorithm(lbcast.Algorithm2),
				lbcast.WithInputs(alternatingInputs(g.N())))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSession(b, s)
			}
		}},
		{"sweep/figure1a/strategies", func(b *testing.B) {
			grid := eval.Grid{
				Graphs:     []eval.GraphCase{{Label: "figure1a", G: gen.Figure1a()}},
				Faults:     []int{1},
				Strategies: []string{"none", "silent", "tamper", "forge"},
				Placements: 2,
				Seed:       7,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eval.RunSweep(context.Background(), grid, 0)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.OK != res.Stats.Cells {
					b.Fatalf("sweep violations: %+v", res.Stats)
				}
			}
		}},
		{"montecarlo/figure1a/16-trials", func(b *testing.B) {
			g := gen.Figure1a()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eval.MonteCarlo(eval.MonteCarloConfig{
					G: g, F: 1, Algorithm: eval.Algo1, Trials: 16, Seed: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.OK != res.Trials {
					b.Fatalf("violations: %+v", res.Violations)
				}
			}
		}},
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lbcbench", flag.ContinueOnError)
	out := fs.String("out", "", "write JSON to this file instead of stdout")
	filter := fs.String("filter", "", "only run workloads whose name contains this substring")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the benchmark runs to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	var ms []Measurement
	for _, wl := range workloads() {
		if *filter != "" && !strings.Contains(wl.name, *filter) {
			continue
		}
		r := testing.Benchmark(wl.fn)
		ms = append(ms, Measurement{
			Name:        wl.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	if len(ms) == 0 {
		return fmt.Errorf("no workloads match filter %q", *filter)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		return cliutil.WriteJSON(f, ms)
	}
	return cliutil.WriteJSON(w, ms)
}
