// Command lbcbench runs the library's representative benchmark workloads
// via testing.Benchmark and emits the measurements as JSON, so successive
// PRs can track the performance trajectory in checked-in BENCH_*.json
// files without parsing `go test -bench` text output.
//
// Workload names are slash-separated descriptors,
// "<family>/<algorithm-or-subject>/<graph>/<variant>": the session/*
// workloads run one consensus execution per op, sweep/* and montecarlo/*
// run a whole sweep per op, the throughput/* pairs run the same B
// instances either batched (one multi-instance engine) or as independent
// sequential Session runs — the batched/independent ratio is the batching
// speedup — and the serving/* pairs drive B concurrent requests through
// the lbcastd daemon's full admit/pack/decide path, single vs sharded
// scheduler. The output schema (also printed by -help) is documented in
// DESIGN.md §8.
//
// Usage:
//
//	lbcbench                      # all workloads, JSON to stdout
//	lbcbench -filter algo1        # substring-filtered workloads
//	lbcbench -batch               # only the batched-throughput pairs
//	lbcbench -out BENCH_4.json -prev BENCH_3.json
//	lbcbench -check-allocs testdata/alloc_budgets.json
//	lbcbench -leaderboard BENCH_5.json,BENCH_7.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"lbcast"
	"lbcast/internal/adversary"
	"lbcast/internal/cliutil"
	"lbcast/internal/eval"
	"lbcast/internal/flood"
	"lbcast/internal/graph/gen"
	"lbcast/internal/server"
)

func main() {
	// SIGINT/SIGTERM stop the suite between workloads: measurements already
	// taken still flush as valid JSON, so an interrupted long run leaves a
	// usable partial BENCH file.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lbcbench:", err)
		os.Exit(1)
	}
}

// Measurement is one workload's recorded result; this is the element type
// of the BENCH_*.json files (a JSON array of these, one per workload).
// See DESIGN.md §8 for the schema contract.
type Measurement struct {
	// Name is the stable slash-separated workload descriptor.
	Name string `json:"name"`
	// Iterations is the op count testing.Benchmark settled on.
	Iterations int `json:"iterations"`
	// NsPerOp is wall-clock nanoseconds per op (one op = one execution,
	// sweep, or batch, depending on the workload family).
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp / BytesPerOp are the allocator counters per op.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Instances is the number of consensus instances one op completes;
	// set only on throughput workloads.
	Instances int `json:"instances,omitempty"`
	// DecisionsPerSec is Instances / seconds-per-op: completed consensus
	// instances per second. Set only on throughput workloads; the
	// batched-vs-independent ratio on the same instances is the batching
	// speedup tracked by the acceptance criteria.
	DecisionsPerSec float64 `json:"decisions_per_sec,omitempty"`
	// PlanCompiles / PlanMaskedCompiles / PlanReplaySessions /
	// PlanDeltaReplays / PlanDynamicSessions are the propagation-plan
	// cache counters accumulated over the whole measurement (all
	// benchmark iterations): benign and masked (crash-world) plan
	// compilations, per-node flooding sessions served by wholesale
	// (benign or masked) replay, sessions served by delta replay around
	// value-faulty slots, and sessions that ran fully dynamic. A large
	// replay:compile ratio is the amortization the plan layer exists for.
	PlanCompiles        int64 `json:"plan_compiles,omitempty"`
	PlanMaskedCompiles  int64 `json:"plan_masked_compiles,omitempty"`
	PlanReplaySessions  int64 `json:"plan_replay_sessions,omitempty"`
	PlanDeltaReplays    int64 `json:"plan_delta_replays,omitempty"`
	PlanDynamicSessions int64 `json:"plan_dynamic_sessions,omitempty"`
	// ReplayHitRate is (PlanReplaySessions + PlanDeltaReplays) /
	// (PlanReplaySessions + PlanDeltaReplays + PlanDynamicSessions) — the
	// fraction of flooding sessions served by any replay tier. Present (a
	// pointer, so an explicit 0 survives JSON encoding) whenever the
	// workload counted any phase-node flooding session: a recorded 0
	// means replay never engaged — the regression signal the CI smoke job
	// asserts on — while workloads that never flood via phase nodes omit
	// the field entirely.
	ReplayHitRate *float64 `json:"replay_hit_rate,omitempty"`
	// TrialPoolHits / AdversaryReuses are the Monte Carlo scaffolding
	// counters accumulated over the whole measurement: trial-scratch pool
	// hits (a recycled RNG + input slab + fault-list bundle) and adversary
	// instances re-armed through the strategy pools instead of
	// constructed. Zero (omitted) on workloads that never run Monte Carlo
	// trials; the CI smoke job asserts they engage on the faultprob
	// workload.
	TrialPoolHits   int64 `json:"trial_pool_hits,omitempty"`
	AdversaryReuses int64 `json:"adversary_reuses,omitempty"`
	// ChurnEvents / PlanInvalidations are the fault-injection counters
	// accumulated over the whole measurement: topology events applied at
	// round boundaries and replay-qualified runs whose compiled-plan
	// replay a schedule cut back to the taint frontier. Zero (omitted) on
	// workloads without injection; the CI smoke job asserts they engage on
	// the churn workload.
	ChurnEvents       int64 `json:"churn_events,omitempty"`
	PlanInvalidations int64 `json:"plan_invalidations,omitempty"`
}

// benchSchema is the -help description of the BENCH_*.json output format.
const benchSchema = `output schema (BENCH_*.json):
  A JSON array with one object per workload:
    name              stable slash-separated workload descriptor
    iterations        op count testing.Benchmark settled on
    ns_per_op         wall-clock nanoseconds per op
    allocs_per_op     heap allocations per op
    bytes_per_op      heap bytes per op
    instances         consensus instances completed per op (throughput workloads only)
    decisions_per_sec instances / seconds-per-op (throughput workloads only)
    plan_compiles     benign propagation-plan compilations over the whole measurement
    plan_masked_compiles  crash-world masked plan compilations
    plan_replay_sessions  per-node flooding sessions served by wholesale
                      (benign or masked) compiled-plan replay
    plan_delta_replays    per-node flooding sessions served by delta replay
                      around value-faulty slots
    plan_dynamic_sessions per-node flooding sessions on the fully dynamic path
    replay_hit_rate   (replay + delta) / (replay + delta + dynamic) session
                      fraction; present (possibly an explicit 0) whenever
                      any phase-node flooding session was counted
    trial_pool_hits   Monte Carlo trial-scaffolding pool hits (recycled
                      RNG/input-slab/fault-list bundles) over the whole
                      measurement
    adversary_reuses  adversary instances recycled through the strategy
                      pools instead of constructed, over the whole
                      measurement
    churn_events      fault-injection topology events applied at round
                      boundaries over the whole measurement
    plan_invalidations  runs whose compiled-plan replay a fault-injection
                      schedule cut back to the taint frontier (or abandoned)
  One op is one consensus execution (session/*), one full sweep
  (sweep/*, montecarlo/*), one batch of B instances (throughput/*), or
  one packed group of B served requests (serving/*). The montecarlo/*
  sweeps also record instances/decisions_per_sec (one decision per trial),
  so they rank on the leaderboard alongside the throughput families.
  The throughput/batch vs throughput/independent pairs run identical
  instance sets; their decisions_per_sec ratio is the batching speedup.
  The serving/*-single vs serving/*-sharded pairs serve identical request
  sets; their ratio is the sharded scheduler's speedup (bounded by the
  machine's spare cores).
  The plan_* counters are accumulated across every benchmark iteration of
  the workload (not per op); omitted when zero.`

// workload binds a benchmark name to its body. instances, when non-zero,
// marks a throughput workload completing that many consensus instances
// per op.
type workload struct {
	name      string
	instances int
	fn        func(b *testing.B)
}

// mustSession builds a session or aborts the benchmark.
func mustSession(b *testing.B, g *lbcast.Graph, opts ...lbcast.Option) *lbcast.Session {
	b.Helper()
	s, err := lbcast.NewSession(g, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// runSession runs the session once and asserts consensus held.
func runSession(b *testing.B, s *lbcast.Session) {
	b.Helper()
	res, err := s.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if !res.OK() {
		b.Fatalf("consensus failed: %+v", res)
	}
}

func alternatingInputs(n int) map[lbcast.NodeID]lbcast.Value {
	m := make(map[lbcast.NodeID]lbcast.Value, n)
	for i := 0; i < n; i++ {
		m[lbcast.NodeID(i)] = lbcast.Value(i % 2)
	}
	return m
}

// throughputInstances builds the B instances shared by a throughput pair:
// rotated input vectors, with a (stateless) silent fault on every fourth
// instance so the mix covers both the early-deciding and the slow path.
// The instances are stateless, so the same slice is reused across ops and
// between the batched and the independent runner.
func throughputInstances(g *lbcast.Graph, b int) []lbcast.BatchInstance {
	n := g.N()
	out := make([]lbcast.BatchInstance, b)
	for i := range out {
		inputs := make(map[lbcast.NodeID]lbcast.Value, n)
		for u := 0; u < n; u++ {
			inputs[lbcast.NodeID(u)] = lbcast.Value((u + i) % 2)
		}
		inst := lbcast.BatchInstance{Inputs: inputs}
		if i%4 == 3 {
			z := lbcast.NodeID(i % n)
			inst.Byzantine = map[lbcast.NodeID]lbcast.Node{z: lbcast.NewSilentFault(z)}
		}
		out[i] = inst
	}
	return out
}

// servingBodies builds B distinct benign decision requests for the
// serving workloads (rotated input patterns over figure1b). Benign traffic
// is the daemon's steady state, so the recorded replay_hit_rate is the
// compiled-plan fraction under serving load (~1 by design).
func servingBodies(bsize int) [][]byte {
	out := make([][]byte, bsize)
	for i := range out {
		out[i] = []byte(fmt.Sprintf(`{"graph":"figure1b","f":2,"input_pattern":[%d,%d,1]}`, i%2, (i/2)%2))
	}
	return out
}

// servingWorkload measures lbcastd's full decide path — admit, pack,
// batch-execute, respond — by driving B concurrent in-process HTTP
// requests per op against a Server handler; one op is one packed group of
// B decisions. The single/sharded variants differ only in ShardWorkers:
// the sharded scheduler splits each group's instances across parallel
// round loops (identical decisions; wall-clock scales with spare cores).
func servingWorkload(name string, bsize, shardWorkers int) workload {
	return workload{name: name, instances: bsize, fn: func(b *testing.B) {
		srv := server.New(server.Config{
			Workers:      1,
			ShardWorkers: shardWorkers,
			MaxBatch:     bsize,
			Linger:       time.Second, // groups flush by size, never by timer
			MaxPending:   4 * bsize,
			ClientQuota:  4 * bsize,
		})
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := srv.Drain(ctx); err != nil {
				b.Error(err)
			}
		}()
		h := srv.Handler()
		bodies := servingBodies(bsize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for j := 0; j < bsize; j++ {
				wg.Add(1)
				go func(j int) {
					defer wg.Done()
					req := httptest.NewRequest(http.MethodPost, "/v1/decide", bytes.NewReader(bodies[j]))
					req.Header.Set("X-Client-ID", fmt.Sprintf("bench-%d", j%8))
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Errorf("decide: status %d: %s", rec.Code, rec.Body.Bytes())
					}
				}(j)
			}
			wg.Wait()
		}
	}}
}

// workloads returns the benchmark suite. The early/full pair on the same
// instance makes the early-termination speedup directly visible in the
// recorded numbers.
func workloads() []workload {
	return []workload{
		{name: "session/algo1/figure1a/early", fn: func(b *testing.B) {
			g := lbcast.Figure1a()
			s := mustSession(b, g, lbcast.WithFaults(1), lbcast.WithInputs(alternatingInputs(g.N())))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSession(b, s)
			}
		}},
		{name: "session/algo1/figure1a/full-budget", fn: func(b *testing.B) {
			g := lbcast.Figure1a()
			s := mustSession(b, g, lbcast.WithFaults(1), lbcast.WithInputs(alternatingInputs(g.N())),
				lbcast.WithFullBudget())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSession(b, s)
			}
		}},
		{name: "session/algo1/figure1a/tamper", fn: func(b *testing.B) {
			g := lbcast.Figure1a()
			s := mustSession(b, g, lbcast.WithFaults(1), lbcast.WithInputs(alternatingInputs(g.N())),
				lbcast.WithByzantine(map[lbcast.NodeID]lbcast.Node{
					2: lbcast.NewTamperFault(g, 2, lbcast.PhaseRounds(g), 42),
				}))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSession(b, s)
			}
		}},
		{name: "session/algo1/figure1b/early", fn: func(b *testing.B) {
			g := lbcast.Figure1b()
			s := mustSession(b, g, lbcast.WithFaults(2), lbcast.WithInputs(alternatingInputs(g.N())))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSession(b, s)
			}
		}},
		{name: "session/algo2/figure1b/tamper", fn: func(b *testing.B) {
			g := lbcast.Figure1b()
			s := mustSession(b, g, lbcast.WithFaults(2), lbcast.WithAlgorithm(lbcast.Algorithm2),
				lbcast.WithInputs(alternatingInputs(g.N())),
				lbcast.WithByzantine(map[lbcast.NodeID]lbcast.Node{
					3: lbcast.NewTamperFault(g, 3, lbcast.PhaseRounds(g), 5),
				}))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSession(b, s)
			}
		}},
		{name: "session/algo2/figure1a", fn: func(b *testing.B) {
			g := lbcast.Figure1a()
			s := mustSession(b, g, lbcast.WithFaults(1), lbcast.WithAlgorithm(lbcast.Algorithm2),
				lbcast.WithInputs(alternatingInputs(g.N())))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runSession(b, s)
			}
		}},
		{name: "sweep/figure1a/strategies", fn: func(b *testing.B) {
			grid := eval.Grid{
				Graphs:     []eval.GraphCase{{Label: "figure1a", G: gen.Figure1a()}},
				Faults:     []int{1},
				Strategies: []string{"none", "silent", "tamper", "forge"},
				Placements: 2,
				Seed:       7,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eval.RunSweep(context.Background(), grid, 0)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.OK != res.Stats.Cells {
					b.Fatalf("sweep violations: %+v", res.Stats)
				}
			}
		}},
		{name: "montecarlo/figure1b/256-trials", instances: 256, fn: func(b *testing.B) {
			// The amortization-heavy rare-fault stream: one compiled plan
			// and one topology analysis serve all 256 trials, ~94% of which
			// are benign and replay the plan end to end.
			g := gen.Figure1b()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eval.MonteCarlo(eval.MonteCarloConfig{
					G: g, F: 2, Algorithm: eval.Algo1, Trials: 256, Seed: 5, FaultProb: 0.0625,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.OK != res.Trials {
					b.Fatalf("violations: %+v", res.Violations)
				}
			}
		}},
		{name: "montecarlo/figure1b/faultprob", instances: 128, fn: func(b *testing.B) {
			// The fault-heavy stream: half the trials draw crash, tamper,
			// equivocation, or forgery patterns, so most sessions ride the
			// masked and delta replay tiers instead of the benign plan —
			// the CI smoke job asserts this workload's replay_hit_rate
			// stays >= 0.95.
			g := gen.Figure1b()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eval.MonteCarlo(eval.MonteCarloConfig{
					G: g, F: 2, Algorithm: eval.Algo1, Trials: 128, Seed: 11, FaultProb: 0.5,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.OK != res.Trials {
					b.Fatalf("violations: %+v", res.Violations)
				}
			}
		}},
		{name: "montecarlo/figure1b/churn", instances: 64, fn: func(b *testing.B) {
			// The fault-injection stream: half the trials receive a seeded
			// link-churn schedule landing after the first phase, so their
			// clean prefix still replays the compiled plan up to the taint
			// frontier while the injected tail runs dynamically over the
			// masked topology. Worlds pushed below the thresholds classify
			// as degraded, never as violations — the CI smoke job asserts
			// plan_invalidations engages and replay_hit_rate keeps a floor.
			g := gen.Figure1b()
			churnStart := lbcast.PhaseRounds(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eval.MonteCarlo(eval.MonteCarloConfig{
					G: g, F: 2, Algorithm: eval.Algo1, Trials: 64, Seed: 9,
					ChurnProfile: eval.ChurnProfile{Kind: "churn", Prob: 0.5, Start: churnStart},
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Violations) > 0 {
					b.Fatalf("violations: %+v", res.Violations)
				}
			}
		}},
		{name: "montecarlo/figure1a/16-trials", instances: 16, fn: func(b *testing.B) {
			g := gen.Figure1a()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eval.MonteCarlo(eval.MonteCarloConfig{
					G: g, F: 1, Algorithm: eval.Algo1, Trials: 16, Seed: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.OK != res.Trials {
					b.Fatalf("violations: %+v", res.Violations)
				}
			}
		}},
		{name: "throughput/batch/figure1b/B16", instances: 16, fn: func(b *testing.B) {
			g := lbcast.Figure1b()
			batch, err := lbcast.NewBatch(g, throughputInstances(g, 16), lbcast.WithFaults(2))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := batch.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK() {
					b.Fatalf("batch consensus failed: %+v", res)
				}
			}
		}},
		{name: "throughput/independent/figure1b/B16", instances: 16, fn: func(b *testing.B) {
			g := lbcast.Figure1b()
			insts := throughputInstances(g, 16)
			sessions := make([]*lbcast.Session, len(insts))
			for i, inst := range insts {
				sessions[i] = mustSession(b, g, lbcast.WithFaults(2),
					lbcast.WithInputs(inst.Inputs), lbcast.WithByzantine(inst.Byzantine))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, s := range sessions {
					runSession(b, s)
				}
			}
		}},
		{name: "throughput/batch/harary/B32", instances: 32, fn: func(b *testing.B) {
			// A denser-overlay batch: Harary H_{4,10} with 32 instances,
			// every fourth carrying a silent fault — the benign 24 collapse
			// into one replaying vector lane group while the faulty 8 stay
			// dynamic in the same round loop.
			g, err := lbcast.Harary(4, 10)
			if err != nil {
				b.Fatal(err)
			}
			batch, err := lbcast.NewBatch(g, throughputInstances(g, 32), lbcast.WithFaults(2))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := batch.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK() {
					b.Fatalf("batch consensus failed: %+v", res)
				}
			}
		}},
		{name: "throughput/batch/montecarlo/B64", instances: 64, fn: func(b *testing.B) {
			g := gen.Figure1a()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eval.MonteCarlo(eval.MonteCarloConfig{
					G: g, F: 1, Algorithm: eval.Algo1, Trials: 64, Seed: 3,
					FaultProb: 0.125, Workers: 1, Batch: 64,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.OK != res.Trials {
					b.Fatalf("violations: %+v", res.Violations)
				}
			}
		}},
		{name: "throughput/independent/montecarlo/B64", instances: 64, fn: func(b *testing.B) {
			g := gen.Figure1a()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eval.MonteCarlo(eval.MonteCarloConfig{
					G: g, F: 1, Algorithm: eval.Algo1, Trials: 64, Seed: 3,
					FaultProb: 0.125, Workers: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.OK != res.Trials {
					b.Fatalf("violations: %+v", res.Violations)
				}
			}
		}},
		// The daemon serving pairs: same B requests through the full
		// admit/pack/decide/respond path, single round loop vs the sharded
		// scheduler. decisions_per_sec here is end-to-end serving
		// throughput, HTTP included.
		servingWorkload("serving/decide/figure1b/B16-single", 16, 1),
		servingWorkload("serving/decide/figure1b/B16-sharded", 16, 4),
		servingWorkload("serving/decide/figure1b/B64-single", 64, 1),
		servingWorkload("serving/decide/figure1b/B64-sharded", 64, 4),
	}
}

// loadMeasurements reads a BENCH_*.json file into a name-indexed map.
func loadMeasurements(path string) (map[string]Measurement, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ms []Measurement
	if err := json.Unmarshal(data, &ms); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Measurement, len(ms))
	for _, m := range ms {
		out[m.Name] = m
	}
	return out, nil
}

// printDeltas writes a human-readable bytes_per_op / ns_per_op delta
// summary against a previous BENCH file to w (one line per workload that
// exists in both runs).
func printDeltas(w io.Writer, ms []Measurement, prev map[string]Measurement) {
	fmt.Fprintln(w, "deltas vs previous BENCH file:")
	for _, m := range ms {
		p, ok := prev[m.Name]
		if !ok {
			fmt.Fprintf(w, "  %-40s (new workload)\n", m.Name)
			continue
		}
		line := fmt.Sprintf("  %-40s bytes/op %d -> %d", m.Name, p.BytesPerOp, m.BytesPerOp)
		if m.BytesPerOp > 0 {
			line += fmt.Sprintf(" (%.2fx)", float64(p.BytesPerOp)/float64(m.BytesPerOp))
		}
		if m.NsPerOp > 0 {
			line += fmt.Sprintf(", ns/op %.0f -> %.0f (%.2fx)", p.NsPerOp, m.NsPerOp, p.NsPerOp/m.NsPerOp)
		}
		fmt.Fprintln(w, line)
	}
}

// allocBudgets is the checked-in allocs_per_op budget file format
// (testdata/alloc_budgets.json): workload name -> budget. A measured
// allocs_per_op more than allocSlack above its budget fails the gate.
type allocBudgets map[string]int64

// allocSlack is the tolerated allocs_per_op regression over a budget.
const allocSlack = 0.15

// checkAllocs gates measured allocs_per_op against budgets, reporting
// every over-budget workload. Budgeted workloads missing from ms fail
// too — a silently skipped gate is a broken gate.
func checkAllocs(w io.Writer, ms []Measurement, budgets allocBudgets) error {
	byName := make(map[string]Measurement, len(ms))
	for _, m := range ms {
		byName[m.Name] = m
	}
	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		budget := budgets[name]
		m, ok := byName[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: budgeted workload was not measured", name))
			continue
		}
		limit := int64(float64(budget) * (1 + allocSlack))
		status := "ok"
		if m.AllocsPerOp > limit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op exceeds budget %d (+%d%% limit %d)",
				name, m.AllocsPerOp, budget, int(allocSlack*100), limit))
		}
		fmt.Fprintf(w, "alloc gate %-40s %d/%d allocs/op (limit %d): %s\n", name, m.AllocsPerOp, budget, limit, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// graphFamily extracts the graph segment of a workload descriptor
// ("<family>/<algorithm-or-subject>/<graph>/<variant>") for leaderboard
// grouping. The three-segment montecarlo/<graph>/<variant> sweeps carry
// their graph in the second segment; workloads with fewer segments group
// under "-".
func graphFamily(name string) string {
	parts := strings.Split(name, "/")
	if parts[0] == "montecarlo" && len(parts) >= 2 {
		return parts[1]
	}
	if len(parts) >= 3 {
		return parts[2]
	}
	return "-"
}

// printLeaderboard renders a decisions/sec table from one or more
// BENCH_*.json files: one row per workload that recorded a
// decisions_per_sec (the throughput/*, serving/*, and montecarlo/*
// families — tie-broken deterministically by name within a group), one
// column per file, rows grouped by graph family and ranked within each
// group by the last (newest) file's throughput. This is the
// trajectory-at-a-glance view: feed it the whole BENCH_* sequence and
// each column is one PR.
func printLeaderboard(w io.Writer, paths []string) error {
	type column struct {
		label string
		ms    map[string]Measurement
	}
	cols := make([]column, 0, len(paths))
	names := make(map[string]bool)
	for _, p := range paths {
		p = strings.TrimSpace(p)
		ms, err := loadMeasurements(p)
		if err != nil {
			return err
		}
		for name, m := range ms {
			if m.DecisionsPerSec > 0 {
				names[name] = true
			}
		}
		cols = append(cols, column{label: strings.TrimSuffix(filepath.Base(p), ".json"), ms: ms})
	}
	if len(names) == 0 {
		return fmt.Errorf("no throughput measurements (decisions_per_sec) in %s", strings.Join(paths, ", "))
	}
	rows := make([]string, 0, len(names))
	for name := range names {
		rows = append(rows, name)
	}
	newest := cols[len(cols)-1].ms
	sort.Slice(rows, func(i, j int) bool {
		gi, gj := graphFamily(rows[i]), graphFamily(rows[j])
		if gi != gj {
			return gi < gj
		}
		if di, dj := newest[rows[i]].DecisionsPerSec, newest[rows[j]].DecisionsPerSec; di != dj {
			return di > dj
		}
		return rows[i] < rows[j]
	})
	fmt.Fprintln(w, "decisions/sec leaderboard (grouped by graph family, ranked by newest column):")
	fmt.Fprintf(w, "%-42s %-12s %4s", "workload", "graph", "B")
	for _, c := range cols {
		fmt.Fprintf(w, "  %14s", c.label)
	}
	fmt.Fprintln(w)
	prevFamily := ""
	for _, name := range rows {
		fam := graphFamily(name)
		if prevFamily != "" && fam != prevFamily {
			fmt.Fprintln(w)
		}
		prevFamily = fam
		instances := 0
		for _, c := range cols {
			if m, ok := c.ms[name]; ok && m.Instances > 0 {
				instances = m.Instances
			}
		}
		fmt.Fprintf(w, "%-42s %-12s %4d", name, fam, instances)
		for _, c := range cols {
			if m, ok := c.ms[name]; ok && m.DecisionsPerSec > 0 {
				fmt.Fprintf(w, "  %14.1f", m.DecisionsPerSec)
			} else {
				fmt.Fprintf(w, "  %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// timeSlack is the tolerated ns_per_op regression against a previous
// BENCH file — looser semantics than the alloc gate (wall-clock is
// machine-sensitive), so it runs only when the caller supplies -prev.
const timeSlack = 0.15

// checkTime gates measured ns_per_op of the budgeted workloads against a
// previous BENCH file: more than timeSlack slower fails. Budgeted
// workloads absent from prev pass (new workload, nothing to regress
// against).
func checkTime(w io.Writer, ms []Measurement, prev map[string]Measurement, budgets allocBudgets) error {
	var failures []string
	for _, m := range ms {
		if _, budgeted := budgets[m.Name]; !budgeted {
			continue
		}
		p, ok := prev[m.Name]
		if !ok || p.NsPerOp <= 0 {
			continue
		}
		limit := p.NsPerOp * (1 + timeSlack)
		status := "ok"
		if m.NsPerOp > limit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op exceeds previous %.0f (+%d%% limit %.0f)",
				m.Name, m.NsPerOp, p.NsPerOp, int(timeSlack*100), limit))
		}
		fmt.Fprintf(w, "time gate  %-40s %.0f/%.0f ns/op (limit %.0f): %s\n", m.Name, m.NsPerOp, p.NsPerOp, limit, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("time regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lbcbench", flag.ContinueOnError)
	out := fs.String("out", "", "write JSON to this file instead of stdout")
	filter := fs.String("filter", "", "only run workloads whose name contains this substring")
	batchOnly := fs.Bool("batch", false, "only run the throughput/* batched-vs-independent pairs")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the benchmark runs to this file")
	memprofile := fs.String("memprofile", "", "write a pprof allocation profile of the benchmark runs to this file")
	prev := fs.String("prev", "", "previous BENCH_*.json file; print per-workload bytes_per_op/ns_per_op deltas to stderr")
	checkAllocsPath := fs.String("check-allocs", "",
		"allocs_per_op budget file (testdata/alloc_budgets.json); run only the budgeted workloads and fail on a >15% regression (with -prev, also fail on a >15% ns_per_op regression)")
	leaderboard := fs.String("leaderboard", "",
		"comma-separated BENCH_*.json files; print a decisions/sec leaderboard from the recorded measurements instead of running benchmarks")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: lbcbench [flags]")
		fs.PrintDefaults()
		fmt.Fprintln(fs.Output())
		fmt.Fprintln(fs.Output(), benchSchema)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *leaderboard != "" {
		return printLeaderboard(w, strings.Split(*leaderboard, ","))
	}
	var budgets allocBudgets
	if *checkAllocsPath != "" {
		data, err := os.ReadFile(*checkAllocsPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &budgets); err != nil {
			return fmt.Errorf("%s: %w", *checkAllocsPath, err)
		}
		if len(budgets) == 0 {
			return fmt.Errorf("%s: no budgets", *checkAllocsPath)
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	var ms []Measurement
	interrupted := false
	for _, wl := range workloads() {
		// The interrupt boundary: a signal between workloads stops the
		// suite but the measurements already taken still flush below.
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		if *filter != "" && !strings.Contains(wl.name, *filter) {
			continue
		}
		if *batchOnly && !strings.HasPrefix(wl.name, "throughput/") {
			continue
		}
		if budgets != nil {
			if _, ok := budgets[wl.name]; !ok {
				continue
			}
		}
		// Isolate workloads from each other's heap state: a preceding
		// allocation-heavy workload otherwise leaves a large live heap and
		// its GC pacing behind, skewing the next measurement. The second
		// collection drains the run-state pools — sync.Pool empties over two
		// GC cycles (live → victim → gone) — so every workload starts cold
		// and its first-op pool misses are its own, not a predecessor's.
		runtime.GC()
		runtime.GC()
		before := flood.ReadPlanStats()
		trialHitsBefore, _ := eval.ReadTrialPoolStats()
		reusesBefore := adversary.ReadRecycleStats()
		churnEvtBefore, invalBefore := eval.ReadChurnStats()
		r := testing.Benchmark(wl.fn)
		after := flood.ReadPlanStats()
		trialHitsAfter, _ := eval.ReadTrialPoolStats()
		reusesAfter := adversary.ReadRecycleStats()
		churnEvtAfter, invalAfter := eval.ReadChurnStats()
		m := Measurement{
			Name:                wl.name,
			Iterations:          r.N,
			NsPerOp:             float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:         r.AllocsPerOp(),
			BytesPerOp:          r.AllocedBytesPerOp(),
			PlanCompiles:        after.Compiles - before.Compiles,
			PlanMaskedCompiles:  after.MaskedCompiles - before.MaskedCompiles,
			PlanReplaySessions:  after.ReplaySessions - before.ReplaySessions,
			PlanDeltaReplays:    after.DeltaReplaySessions - before.DeltaReplaySessions,
			PlanDynamicSessions: after.DynamicSessions - before.DynamicSessions,
			TrialPoolHits:       int64(trialHitsAfter - trialHitsBefore),
			AdversaryReuses:     int64(reusesAfter - reusesBefore),
			ChurnEvents:         int64(churnEvtAfter - churnEvtBefore),
			PlanInvalidations:   int64(invalAfter - invalBefore),
		}
		served := m.PlanReplaySessions + m.PlanDeltaReplays
		if total := served + m.PlanDynamicSessions; total > 0 {
			rate := float64(served) / float64(total)
			m.ReplayHitRate = &rate
		}
		if wl.instances > 0 && m.NsPerOp > 0 {
			m.Instances = wl.instances
			m.DecisionsPerSec = float64(wl.instances) * 1e9 / m.NsPerOp
		}
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		if interrupted {
			return fmt.Errorf("interrupted before any workload completed")
		}
		return fmt.Errorf("no workloads match filter %q", *filter)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // flush recent allocation records into the profile
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return err
		}
	}
	var prevMeasurements map[string]Measurement
	if *prev != "" {
		pm, err := loadMeasurements(*prev)
		if err != nil {
			return err
		}
		prevMeasurements = pm
		printDeltas(os.Stderr, ms, pm)
	}
	// Regression gates are meaningless on a partial run (the alloc gate
	// would fail every unmeasured budgeted workload), so an interrupt
	// skips them and flushes the partial measurements instead.
	if budgets != nil && !interrupted {
		if err := checkAllocs(os.Stderr, ms, budgets); err != nil {
			return err
		}
		// With a previous BENCH file at hand, also gate wall-clock time on
		// the budgeted workloads.
		if prevMeasurements != nil {
			if err := checkTime(os.Stderr, ms, prevMeasurements, budgets); err != nil {
				return err
			}
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := cliutil.WriteJSON(f, ms); err != nil {
			return err
		}
	} else if err := cliutil.WriteJSON(w, ms); err != nil {
		return err
	}
	if interrupted {
		return fmt.Errorf("interrupted after %d workloads; partial measurements flushed", len(ms))
	}
	return nil
}
