// Command lbcastd is the consensus-as-a-service daemon: a long-running
// HTTP/JSON server over the batched consensus engine. Clients POST
// decision requests (graph spec, inputs, fault pattern, algorithm) to
// /v1/decide; the daemon admits them against per-client quotas and a
// bounded queue (429 on overflow), packs compatible requests into batched
// executions keyed by graph — reusing one memoized topology analysis and
// compiled flood plan per graph, so steady-state traffic rides the replay
// path — runs the groups on a multi-worker scheduler, and returns each
// decision (synchronous JSON, or SSE with ?stream=sse). /healthz reports
// liveness, /metrics serves Prometheus text counters (queue depth, batch
// occupancy, decisions/sec, replay hit rate, per-client tallies), and
// SIGINT/SIGTERM trigger a graceful drain: admission stops, forming
// batches flush, pending decisions are delivered, then the process exits.
//
// Usage:
//
//	lbcastd                             # listen on :8418, GOMAXPROCS workers
//	lbcastd -addr :9000 -workers 8
//	lbcastd -max-batch 32 -linger 1ms   # smaller, fresher batches
//	lbcastd -max-pending 4096 -client-quota 512
//
// A decision request, end to end:
//
//	curl -s localhost:8418/v1/decide -d '{
//	  "graph": "figure1a", "f": 1,
//	  "inputs": [0, 1, 0, 1, 1],
//	  "faults": [{"node": 2, "strategy": "silent"}]
//	}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"lbcast/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lbcastd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.SetPrefix("lbcastd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg.OnListen = func(addr string) {
		log.Printf("listening on %s (workers=%d max-batch=%d linger=%s)",
			addr, workers, cfg.MaxBatch, cfg.Linger)
	}
	srv := server.New(cfg)
	err = srv.ListenAndServe(ctx)
	if ctx.Err() != nil && err == nil {
		log.Printf("drained cleanly, exiting")
	}
	return err
}

// parseFlags maps the command line onto a server.Config.
func parseFlags(args []string) (server.Config, error) {
	fs := flag.NewFlagSet("lbcastd", flag.ContinueOnError)
	addr := fs.String("addr", ":8418", "listen address")
	workers := fs.Int("workers", 0, "scheduler workers: packed groups executing concurrently, each its own round loop (0 = GOMAXPROCS)")
	shardWorkers := fs.Int("shard-workers", 1, "additionally shard each group's instances across this many round loops (1 = group parallelism only); never affects decisions")
	maxBatch := fs.Int("max-batch", 64, "max requests packed into one batched execution")
	linger := fs.Duration("linger", 2*time.Millisecond, "how long a forming batch waits for more requests before dispatching (negative = dispatch each request alone)")
	maxPending := fs.Int("max-pending", 1024, "max admitted-but-undecided requests daemon-wide; beyond it requests get 429")
	clientQuota := fs.Int("client-quota", 256, "max pending requests per client (X-Client-ID header or remote host)")
	maxGraphs := fs.Int("max-graphs", 64, "max distinct topologies with memoized analyses/plans")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-drain bound on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return server.Config{}, err
	}
	if fs.NArg() > 0 {
		return server.Config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return server.Config{
		Addr:         *addr,
		Workers:      *workers,
		ShardWorkers: *shardWorkers,
		MaxBatch:     *maxBatch,
		Linger:       *linger,
		MaxPending:   *maxPending,
		ClientQuota:  *clientQuota,
		MaxGraphs:    *maxGraphs,
		DrainTimeout: *drainTimeout,
	}, nil
}
