package main

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"lbcast/internal/server"
)

// TestParseFlags pins the flag surface and its defaults.
func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != ":8418" || cfg.MaxBatch != 64 || cfg.Linger != 2*time.Millisecond {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	cfg, err = parseFlags([]string{"-addr", ":0", "-workers", "3", "-max-batch", "8"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != ":0" || cfg.Workers != 3 || cfg.MaxBatch != 8 {
		t.Errorf("flags not applied: %+v", cfg)
	}
	if _, err := parseFlags([]string{"extra"}); err == nil {
		t.Error("positional arguments accepted")
	}
}

// TestDaemonLifecycle boots the daemon on an ephemeral port, serves one
// decision, and verifies the signal-context path drains cleanly — the
// same handshake the CI smoke job drives against the real binary.
func TestDaemonLifecycle(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	cfg.OnListen = func(addr string) { addrCh <- addr }
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := server.New(cfg)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx) }()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not start listening")
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	body := `{"graph":"figure1a","f":1,"inputs":[0,1,0,1,1]}`
	resp, err = http.Post(base+"/v1/decide", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var decided struct {
		Outcome struct {
			Agreement bool `json:"agreement"`
		} `json:"outcome"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&decided); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !decided.Outcome.Agreement {
		t.Fatalf("decide: status=%d agreement=%v", resp.StatusCode, decided.Outcome.Agreement)
	}
	cancel() // the signal path: ctx cancellation drains and exits
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain")
	}
}
