// Command lbccheck evaluates the paper's tight feasibility conditions for
// a graph: local broadcast (Theorem 4.1/5.1), the efficient algorithm's
// 2f-connectivity (Theorem 5.6), the hybrid conditions (Theorem 6.1), and
// the classical point-to-point baseline.
//
// Usage:
//
//	lbccheck -graph cycle:5 -f 1
//	lbccheck -graph circulant:8:1,2 -f 2 -t 1
//	lbccheck -graph edges:4:0-1,1-2,2-3,3-0 -f 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lbcast/internal/check"
	"lbcast/internal/graph/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lbccheck:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lbccheck", flag.ContinueOnError)
	spec := fs.String("graph", "figure1a", "graph spec (see internal/graph/gen.ParseSpec)")
	f := fs.Int("f", 1, "maximum number of Byzantine faults")
	t := fs.Int("t", 0, "maximum number of equivocating faults (hybrid model)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := gen.ParseSpec(*spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph: %s\n", g)
	fmt.Fprintf(w, "n=%d m=%d min-degree=%d connectivity=%d\n\n",
		g.N(), g.M(), g.MinDegree(), g.VertexConnectivity())

	fmt.Fprintf(w, "local broadcast (Theorem 4.1/5.1), f=%d:\n%s\n\n", *f, check.LocalBroadcast(g, *f))
	fmt.Fprintf(w, "efficient algorithm (Theorem 5.6), f=%d:\n%s\n\n", *f, check.Efficient(g, *f))
	fmt.Fprintf(w, "hybrid model (Theorem 6.1), f=%d t=%d:\n%s\n\n", *f, *t, check.Hybrid(g, *f, *t))
	fmt.Fprintf(w, "point-to-point baseline, f=%d:\n%s\n\n", *f, check.PointToPoint(g, *f))
	fmt.Fprintf(w, "max tolerable f: local-broadcast=%d point-to-point=%d\n",
		check.MaxTolerableLocalBroadcast(g), check.MaxTolerablePointToPoint(g))
	return nil
}
