// Command lbccheck evaluates the paper's tight feasibility conditions for
// a graph: local broadcast (Theorem 4.1/5.1), the efficient algorithm's
// 2f-connectivity (Theorem 5.6), the hybrid conditions (Theorem 6.1), and
// the classical point-to-point baseline.
//
// Usage:
//
//	lbccheck -graph cycle:5 -f 1
//	lbccheck -graph circulant:8:1,2 -f 2 -t 1
//	lbccheck -graph edges:4:0-1,1-2,2-3,3-0 -f 1
//	lbccheck -graph figure1a -f 1 -json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lbcast/internal/check"
	"lbcast/internal/cliutil"
	"lbcast/internal/graph/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lbccheck:", err)
		os.Exit(1)
	}
}

// checkJSON is the machine-readable report of all feasibility checks.
type checkJSON struct {
	Graph          string       `json:"graph"`
	N              int          `json:"n"`
	M              int          `json:"m"`
	MinDegree      int          `json:"min_degree"`
	Connectivity   int          `json:"connectivity"`
	F              int          `json:"f"`
	T              int          `json:"t"`
	LocalBroadcast check.Report `json:"local_broadcast"`
	Efficient      check.Report `json:"efficient"`
	Hybrid         check.Report `json:"hybrid"`
	PointToPoint   check.Report `json:"point_to_point"`
	MaxFLocal      int          `json:"max_f_local_broadcast"`
	MaxFP2P        int          `json:"max_f_point_to_point"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lbccheck", flag.ContinueOnError)
	spec := fs.String("graph", "figure1a", "graph spec (see internal/graph/gen.ParseSpec)")
	f := fs.Int("f", 1, "maximum number of Byzantine faults")
	t := fs.Int("t", 0, "maximum number of equivocating faults (hybrid model)")
	jsonOut := fs.Bool("json", false, "emit JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := gen.ParseSpec(*spec)
	if err != nil {
		return err
	}
	out := checkJSON{
		Graph:          g.String(),
		N:              g.N(),
		M:              g.M(),
		MinDegree:      g.MinDegree(),
		Connectivity:   g.VertexConnectivity(),
		F:              *f,
		T:              *t,
		LocalBroadcast: check.LocalBroadcast(g, *f),
		Efficient:      check.Efficient(g, *f),
		Hybrid:         check.Hybrid(g, *f, *t),
		PointToPoint:   check.PointToPoint(g, *f),
		MaxFLocal:      check.MaxTolerableLocalBroadcast(g),
		MaxFP2P:        check.MaxTolerablePointToPoint(g),
	}
	return cliutil.Emit(w, *jsonOut, out, func(w io.Writer) error {
		fmt.Fprintf(w, "graph: %s\n", out.Graph)
		fmt.Fprintf(w, "n=%d m=%d min-degree=%d connectivity=%d\n\n",
			out.N, out.M, out.MinDegree, out.Connectivity)

		fmt.Fprintf(w, "local broadcast (Theorem 4.1/5.1), f=%d:\n%s\n\n", *f, out.LocalBroadcast)
		fmt.Fprintf(w, "efficient algorithm (Theorem 5.6), f=%d:\n%s\n\n", *f, out.Efficient)
		fmt.Fprintf(w, "hybrid model (Theorem 6.1), f=%d t=%d:\n%s\n\n", *f, *t, out.Hybrid)
		fmt.Fprintf(w, "point-to-point baseline, f=%d:\n%s\n\n", *f, out.PointToPoint)
		fmt.Fprintf(w, "max tolerable f: local-broadcast=%d point-to-point=%d\n",
			out.MaxFLocal, out.MaxFP2P)
		return nil
	})
}
