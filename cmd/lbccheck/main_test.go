package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunCheckFigure1a(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "figure1a", "-f", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"connectivity=2",
		"min degree >= 2f",
		"max tolerable f: local-broadcast=1 point-to-point=0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunCheckBadSpec(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "nope:3"}, &buf); err == nil {
		t.Fatal("bad spec accepted")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
