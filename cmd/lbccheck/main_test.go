package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunCheckFigure1a(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "figure1a", "-f", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"connectivity=2",
		"min degree >= 2f",
		"max tolerable f: local-broadcast=1 point-to-point=0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunCheckJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "figure1a", "-f", "1", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		N              int `json:"n"`
		Connectivity   int `json:"connectivity"`
		LocalBroadcast struct {
			OK bool `json:"ok"`
		} `json:"local_broadcast"`
		MaxFLocal int `json:"max_f_local_broadcast"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out.N != 5 || out.Connectivity != 2 || !out.LocalBroadcast.OK || out.MaxFLocal != 1 {
		t.Fatalf("unexpected JSON report: %+v", out)
	}
}

func TestRunCheckBadSpec(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "nope:3"}, &buf); err == nil {
		t.Fatal("bad spec accepted")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
