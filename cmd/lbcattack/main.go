// Command lbcattack automatically demonstrates the paper's impossibility
// results: given a graph that violates the tight conditions for (f, t), it
// finds the failing condition, builds the matching lemma construction
// (A.1/A.2 under local broadcast, D.1/D.2 under the hybrid model), runs
// the three scripted executions, and shows the consensus violation.
//
// Usage:
//
//	lbcattack -graph edges:4:0-1,1-2,0-2,0-3 -f 1      # degree attack
//	lbcattack -graph edges:5:0-1,1-2,2-3,3-4,0-2 -f 1  # cut attack
//	lbcattack -graph complete:6 -f 2 -t 2              # hybrid D.1 attack
//	lbcattack -graph complete:4 -f 1 -json             # machine-readable
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lbcast/internal/cliutil"
	"lbcast/internal/eval"
	"lbcast/internal/graph/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lbcattack:", err)
		os.Exit(1)
	}
}

// attackJSON is the machine-readable demonstration record.
type attackJSON struct {
	Graph    string     `json:"graph"`
	F        int        `json:"f"`
	T        int        `json:"t"`
	Lemma    string     `json:"lemma"`
	Reason   string     `json:"reason"`
	Rounds   int        `json:"rounds"`
	Violated bool       `json:"violated"`
	Header   []string   `json:"header"`
	Rows     [][]string `json:"rows"`
	Notes    []string   `json:"notes,omitempty"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lbcattack", flag.ContinueOnError)
	spec := fs.String("graph", "", "graph spec (required)")
	f := fs.Int("f", 1, "fault bound f")
	t := fs.Int("t", 0, "equivocation bound t (0 = pure local broadcast)")
	jsonOut := fs.Bool("json", false, "emit JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spec == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := gen.ParseSpec(*spec)
	if err != nil {
		return err
	}

	fa, err := eval.FindAttack(g, *f, *t)
	if err != nil {
		return err
	}
	// Text mode narrates progressively: the found condition prints before
	// the (potentially slow) scripted executions run.
	if !*jsonOut {
		fmt.Fprintf(w, "graph: %s\n", g)
		fmt.Fprintf(w, "violated condition: %s (Lemma %s construction)\n", fa.Reason, fa.Lemma)
		fmt.Fprintf(w, "running the three scripted executions (%d rounds each)...\n\n", fa.Attack.Rounds)
	}
	table, violated, err := eval.RunFoundAttack(g, fa)
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := cliutil.WriteJSON(w, attackJSON{
			Graph:    g.String(),
			F:        *f,
			T:        *t,
			Lemma:    fa.Lemma,
			Reason:   fa.Reason,
			Rounds:   fa.Attack.Rounds,
			Violated: violated,
			Header:   table.Header,
			Rows:     table.Rows,
			Notes:    table.Notes,
		}); err != nil {
			return err
		}
	} else {
		fmt.Fprint(w, table)
	}
	if !violated {
		return fmt.Errorf("no violation observed (unexpected: the lemma guarantees one)")
	}
	if !*jsonOut {
		fmt.Fprintln(w, "\nconsensus violated, as Theorem 4.1/6.1 predicts for this graph")
	}
	return nil
}
