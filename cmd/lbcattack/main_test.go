package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAttackFindsViolation(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "edges:4:0-1,1-2,0-2,0-3", "-f", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "VIOLATED") || !strings.Contains(out, "Lemma A.1") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunAttackRejectsFeasible(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "figure1a", "-f", "1"}, &buf); err == nil {
		t.Fatal("feasible graph accepted")
	}
}

func TestRunAttackRequiresGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing -graph accepted")
	}
}
