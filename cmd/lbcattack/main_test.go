package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunAttackFindsViolation(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-graph", "edges:4:0-1,1-2,0-2,0-3", "-f", "1"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "VIOLATED") || !strings.Contains(out, "Lemma A.1") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunAttackJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "edges:4:0-1,1-2,0-2,0-3", "-f", "1", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Lemma    string     `json:"lemma"`
		Violated bool       `json:"violated"`
		Rows     [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if out.Lemma != "A.1" || !out.Violated || len(out.Rows) == 0 {
		t.Fatalf("unexpected JSON report: %+v", out)
	}
}

func TestRunAttackRejectsFeasible(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-graph", "figure1a", "-f", "1"}, &buf); err == nil {
		t.Fatal("feasible graph accepted")
	}
}

func TestRunAttackRequiresGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing -graph accepted")
	}
}
