package lbcast

import (
	"context"

	"lbcast/internal/eval"
	"lbcast/internal/sim"
)

// Observer receives execution events from a running Session: round
// starts, physical transmissions, per-node decisions as they happen, and
// completion. Embed NoopObserver for partial implementations.
type Observer = sim.Observer

// NoopObserver is the no-op Observer base.
type NoopObserver = sim.NoopObserver

// Transmission records one physical transmission, as delivered to
// Observer.Transmission.
type Transmission = sim.Transmission

// Metrics are the execution counters delivered to Observer.Done.
type Metrics = sim.Metrics

// TraceRecorder collects every transmission of a run for later rendering
// (text or JSON); pass it to WithObserver. See its WriteText/WriteJSON.
type TraceRecorder = sim.Recorder

// CombineObservers fans events out to several observers in order.
func CombineObservers(obs ...Observer) Observer { return sim.Observers(obs...) }

// Session is a validated, reusable consensus execution: a communication
// graph plus options, runnable any number of times. Each Run builds fresh
// protocol state; the Session itself never mutates after construction, so
// concurrent Runs are safe as long as the attached Observer and Byzantine
// node instances are themselves safe to share — both are invoked from
// every run (see WithByzantine and WithObserver).
//
// By default a run terminates as soon as every honest node has decided —
// on benign executions this reduces Algorithm 1's exponential round
// budget to a couple of flooding phases — and the decisions are provably
// the same ones the full budget would produce. Use WithFullBudget for
// worst-case (adversarial) round accounting.
type Session struct {
	inner *eval.Session
}

// Option configures a Session.
type Option func(*eval.Spec)

// WithAlgorithm selects the consensus protocol (default Algorithm1).
func WithAlgorithm(a AlgorithmChoice) Option {
	return func(s *eval.Spec) { s.Algorithm = a }
}

// WithModel selects the communication model (default LocalBroadcast).
func WithModel(m Model) Option {
	return func(s *eval.Spec) { s.Model = m }
}

// WithFaults sets the fault bound f the honest nodes assume.
func WithFaults(f int) Option {
	return func(s *eval.Spec) { s.F = f }
}

// WithEquivocating sets the equivocation bound t (Algorithm3 only).
func WithEquivocating(t int) Option {
	return func(s *eval.Spec) { s.T = t }
}

// WithInputs assigns each node's binary input.
func WithInputs(inputs map[NodeID]Value) Option {
	return func(s *eval.Spec) { s.Inputs = inputs }
}

// WithByzantine overrides the listed nodes with adversarial Node
// implementations (see NewSilentFault, NewTamperFault,
// NewEquivocatorFault, or implement Node directly).
//
// Honest protocol nodes are rebuilt fresh for every Run, but the supplied
// Byzantine instances are shared across runs: a stateful adversary keeps
// evolving from run to run. For independent or concurrent runs, supply
// stateless strategies (NewSilentFault) or fresh instances per session.
func WithByzantine(byz map[NodeID]Node) Option {
	return func(s *eval.Spec) { s.Byzantine = byz }
}

// WithEquivocators marks the nodes allowed to equivocate under the
// Hybrid model.
func WithEquivocators(set Set) Option {
	return func(s *eval.Spec) { s.Equivocators = set }
}

// WithRoundBudget overrides the algorithm's computed round budget.
func WithRoundBudget(rounds int) Option {
	return func(s *eval.Spec) { s.Rounds = rounds }
}

// WithFullBudget disables early termination: the run always executes the
// complete round budget, exactly as the paper's pseudocode is written.
// Use it for adversarial worst-case accounting, or to cross-check that
// early termination produces identical decisions.
func WithFullBudget() Option {
	return func(s *eval.Spec) { s.FullBudget = true }
}

// WithObserver attaches an observer to every run of the session. Combine
// several with CombineObservers. The one instance is shared by all runs:
// for concurrent Runs it must be safe for concurrent use (TraceRecorder
// is; ad-hoc counters usually are not).
func WithObserver(o Observer) Option {
	return func(s *eval.Spec) { s.Observer = o }
}

// WithSequential runs nodes sequentially within each round instead of
// goroutine-per-node (useful for debugging and profiling).
func WithSequential() Option {
	return func(s *eval.Spec) { s.Sequential = true }
}

// WithWorkers shards a Batch across w parallel round loops: the instances
// are partitioned into min(w, B) contiguous shards, each executed as its
// own round loop on its own goroutine, all sharing one topology analysis
// and compiled propagation plan — the multi-core path that lets batched
// throughput scale with GOMAXPROCS. 0 and 1 keep the single shared loop.
// Decisions are identical for every worker count; only wall-clock time
// changes. Sharded batches reject WithObserver (events would interleave
// across shards), and single Sessions — which have exactly one round loop
// — ignore this option.
func WithWorkers(w int) Option {
	return func(s *eval.Spec) { s.Workers = w }
}

// NewSession validates the graph and options and returns a reusable
// Session. Defaults are applied once, here: zero Algorithm means
// Algorithm1, zero Model means LocalBroadcast. Invalid configurations
// (nil graph, negative bounds, inputs or overrides for out-of-range
// nodes, t > f) are rejected with a descriptive error.
func NewSession(g *Graph, opts ...Option) (*Session, error) {
	spec := eval.Spec{G: g}
	for _, opt := range opts {
		opt(&spec)
	}
	inner, err := eval.NewSession(spec)
	if err != nil {
		return nil, err
	}
	return &Session{inner: inner}, nil
}

// Run executes one consensus instance and judges agreement, validity and
// termination over the honest nodes. The context is checked between
// rounds: cancellation or deadline expiry aborts the run mid-execution
// and returns the context's error.
//
// Run does not verify the feasibility conditions first — combine with the
// Check functions to interpret failures on sub-threshold graphs.
func (s *Session) Run(ctx context.Context) (Result, error) {
	out, err := s.inner.Run(ctx)
	if err != nil {
		return Result{}, err
	}
	return resultFromOutcome(out), nil
}

// resultFromOutcome converts the internal judged outcome to the public
// Result.
func resultFromOutcome(out eval.Outcome) Result {
	return Result{
		Decisions:     out.Decisions,
		Agreement:     out.Agreement,
		Validity:      out.Validity,
		Termination:   out.Termination,
		Rounds:        out.Rounds,
		RoundBudget:   out.Budget,
		Transmissions: out.Metrics.Transmissions,
		Deliveries:    out.Metrics.Deliveries,
	}
}
