package lbcast

// Benchmark harness: one benchmark per experiment in DESIGN.md §4 /
// EXPERIMENTS.md (E1–E11), each exercising the representative workload of
// that experiment, plus micro-benchmarks for the hot substrate operations.
// Regenerate with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"testing"

	"lbcast/internal/adversary"
	"lbcast/internal/core"
	"lbcast/internal/eval"
	"lbcast/internal/flood"
	"lbcast/internal/graph"
	"lbcast/internal/graph/gen"
	"lbcast/internal/sim"
)

func benchInputs(n int) map[graph.NodeID]sim.Value {
	m := make(map[graph.NodeID]sim.Value, n)
	for i := 0; i < n; i++ {
		m[graph.NodeID(i)] = sim.Value(i % 2)
	}
	return m
}

// mustSession builds a Session from public options or fails the benchmark.
func mustSession(b *testing.B, g *Graph, opts ...Option) *Session {
	b.Helper()
	s, err := NewSession(g, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// mustRunOK runs the session once and asserts consensus held.
func mustRunOK(b *testing.B, s *Session) {
	b.Helper()
	res, err := s.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if !res.OK() {
		b.Fatalf("consensus failed: %+v", res)
	}
}

// BenchmarkFigure1aCycle (E1): Algorithm 1 on the Figure 1(a) 5-cycle with
// one tampering fault. The tamperer is stateful, so the session is rebuilt
// with a fresh instance per iteration.
func BenchmarkFigure1aCycle(b *testing.B) {
	g := gen.Figure1a()
	for i := 0; i < b.N; i++ {
		mustRunOK(b, mustSession(b, g,
			WithFaults(1),
			WithInputs(benchInputs(g.N())),
			WithByzantine(map[NodeID]Node{
				2: NewTamperFault(g, 2, PhaseRounds(g), 42),
			}),
		))
	}
}

// BenchmarkEarlyTermination pairs the same fault-free Algorithm 1 instance
// with and without early termination — the session redesign's headline
// speedup, tracked across PRs via cmd/lbcbench.
func BenchmarkEarlyTermination(b *testing.B) {
	g := gen.Figure1a()
	b.Run("early", func(b *testing.B) {
		s := mustSession(b, g, WithFaults(1), WithInputs(benchInputs(g.N())))
		for i := 0; i < b.N; i++ {
			mustRunOK(b, s)
		}
	})
	b.Run("full-budget", func(b *testing.B) {
		s := mustSession(b, g, WithFaults(1), WithInputs(benchInputs(g.N())), WithFullBudget())
		for i := 0; i < b.N; i++ {
			mustRunOK(b, s)
		}
	})
}

// BenchmarkFigure1bCirculant (E2): Algorithm 1 on the Figure 1(b) stand-in
// C8(1,2) with two silent faults (f = 2). Silent faults are stateless, so
// one session is reused across iterations.
func BenchmarkFigure1bCirculant(b *testing.B) {
	g := gen.Figure1b()
	s := mustSession(b, g,
		WithFaults(2),
		WithInputs(benchInputs(g.N())),
		WithByzantine(map[NodeID]Node{
			0: NewSilentFault(0),
			4: NewSilentFault(4),
		}),
	)
	for i := 0; i < b.N; i++ {
		mustRunOK(b, s)
	}
}

// BenchmarkNecessityDegree (E3): build and run the Lemma A.1 attack's E2
// execution on the triangle+pendant graph.
func BenchmarkNecessityDegree(b *testing.B) {
	g := graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 0, V: 3},
	})
	rounds := core.Algo1Rounds(g.N(), 1)
	factory := func(u graph.NodeID, in sim.Value) sim.Node { return core.NewAlgo1Node(g, 1, u, in) }
	for i := 0; i < b.N; i++ {
		atk, err := adversary.DegreeAttack(g, 1, 3, rounds, factory)
		if err != nil {
			b.Fatal(err)
		}
		res, err := eval.RunAttackExecution(g, 1, 0, eval.Algo1, atk.Executions[1], rounds)
		if err != nil {
			b.Fatal(err)
		}
		if res.Agreement {
			b.Fatal("attack must violate agreement")
		}
	}
}

// BenchmarkNecessityCut (E4): the Lemma A.2 attack's E2 execution on a
// 1-cut graph.
func BenchmarkNecessityCut(b *testing.B) {
	g := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 0, V: 2},
	})
	rounds := core.Algo1Rounds(g.N(), 1)
	factory := func(u graph.NodeID, in sim.Value) sim.Node { return core.NewAlgo1Node(g, 1, u, in) }
	for i := 0; i < b.N; i++ {
		atk, err := adversary.CutAttack(g, 1, graph.NewSet(0, 1), graph.NewSet(3, 4), graph.NewSet(2), rounds, factory)
		if err != nil {
			b.Fatal(err)
		}
		res, err := eval.RunAttackExecution(g, 1, 0, eval.Algo1, atk.Executions[1], rounds)
		if err != nil {
			b.Fatal(err)
		}
		if res.Agreement {
			b.Fatal("attack must violate agreement")
		}
	}
}

// BenchmarkSufficiencySweep (E5): Algorithm 1 across every single-fault
// placement on the 5-cycle, with one reusable session per placement.
func BenchmarkSufficiencySweep(b *testing.B) {
	g := gen.Figure1a()
	sessions := make([]*Session, g.N())
	for z := range sessions {
		sessions[z] = mustSession(b, g,
			WithFaults(1),
			WithInputs(benchInputs(g.N())),
			WithByzantine(map[NodeID]Node{NodeID(z): NewSilentFault(NodeID(z))}),
		)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sessions {
			mustRunOK(b, s)
		}
	}
}

// BenchmarkEfficientRounds (E6): Algorithm 2 (O(n) rounds) vs Algorithm 1
// on growing cycles.
func BenchmarkEfficientRounds(b *testing.B) {
	for _, n := range []int{5, 7, 9} {
		g, err := gen.Cycle(n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("algo1/n=%d", n), func(b *testing.B) {
			s := mustSession(b, g, WithFaults(1), WithInputs(benchInputs(n)))
			for i := 0; i < b.N; i++ {
				mustRunOK(b, s)
			}
		})
		b.Run(fmt.Sprintf("algo2/n=%d", n), func(b *testing.B) {
			s := mustSession(b, g, WithFaults(1), WithAlgorithm(Algorithm2), WithInputs(benchInputs(n)))
			for i := 0; i < b.N; i++ {
				mustRunOK(b, s)
			}
		})
	}
}

// BenchmarkFaultIdentification (E7): Algorithm 2 with a deterministic
// tamperer that must be identified (fresh stateful tamperer per run).
func BenchmarkFaultIdentification(b *testing.B) {
	g := gen.Figure1a()
	for i := 0; i < b.N; i++ {
		tamper := adversary.NewTamper(g, 2, core.PhaseRounds(g.N()), 7)
		tamper.FlipProb = 1
		tamper.DropProb = 0
		mustRunOK(b, mustSession(b, g,
			WithFaults(1),
			WithAlgorithm(Algorithm2),
			WithInputs(benchInputs(g.N())),
			WithByzantine(map[NodeID]Node{2: tamper}),
		))
	}
}

// BenchmarkHybridTradeoff (E8): Algorithm 3 on K5 (f=1, t=1) against an
// equivocating fault.
func BenchmarkHybridTradeoff(b *testing.B) {
	g, err := gen.Complete(5)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		mustRunOK(b, mustSession(b, g,
			WithFaults(1),
			WithEquivocating(1),
			WithAlgorithm(Algorithm3),
			WithModel(Hybrid),
			WithEquivocators(NewSet(4)),
			WithInputs(benchInputs(g.N())),
			WithByzantine(map[NodeID]Node{
				4: NewEquivocatorFault(g, 4, PhaseRounds(g)),
			}),
		))
	}
}

// BenchmarkModelComparison (E9): the K3 crossover — local broadcast
// consensus with an equivocator on a graph below the point-to-point bound.
func BenchmarkModelComparison(b *testing.B) {
	g, err := gen.Complete(3)
	if err != nil {
		b.Fatal(err)
	}
	inputs := map[NodeID]Value{0: One, 1: One, 2: One}
	for i := 0; i < b.N; i++ {
		mustRunOK(b, mustSession(b, g,
			WithFaults(1),
			WithInputs(inputs),
			WithByzantine(map[NodeID]Node{
				0: NewEquivocatorFault(g, 0, PhaseRounds(g)),
			}),
		))
	}
}

// BenchmarkFloodingCost (E10): one complete path-annotated flooding phase
// per family.
func BenchmarkFloodingCost(b *testing.B) {
	type item struct {
		label string
		g     *graph.Graph
	}
	var items []item
	for _, n := range []int{5, 9} {
		g, err := gen.Cycle(n)
		if err != nil {
			b.Fatal(err)
		}
		items = append(items, item{fmt.Sprintf("cycle%d", n), g})
	}
	items = append(items, item{"circulant8", gen.Figure1b()})
	for _, it := range items {
		b.Run(it.label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nodes := make([]sim.Node, it.g.N())
				flooders := make([]*flood.Flooder, it.g.N())
				for j := range nodes {
					u := graph.NodeID(j)
					flooders[j] = flood.New(it.g, u)
					nodes[j] = &benchFloodNode{f: flooders[j], me: u}
				}
				eng, err := sim.NewEngine(sim.Config{Topology: sim.GraphTopology{G: it.g}}, nodes)
				if err != nil {
					b.Fatal(err)
				}
				eng.Run(flood.Rounds(it.g.N()))
			}
		})
	}
}

type benchFloodNode struct {
	f  *flood.Flooder
	me graph.NodeID
}

func (n *benchFloodNode) ID() graph.NodeID { return n.me }

func (n *benchFloodNode) Step(round int, inbox []sim.Delivery) []sim.Outgoing {
	switch round {
	case 0:
		return n.f.Start(flood.ValueBody{Value: sim.Value(int(n.me) % 2)})
	case 1:
		out := n.f.Deliver(inbox)
		return append(out, n.f.SynthesizeMissing(func(graph.NodeID) flood.Body {
			return flood.ValueBody{Value: sim.DefaultValue}
		})...)
	default:
		return n.f.Deliver(inbox)
	}
}

// BenchmarkP2PBaseline (E11): the EIG+Dolev baseline on the wheel graph.
func BenchmarkP2PBaseline(b *testing.B) {
	g, err := gen.Wheel(7)
	if err != nil {
		b.Fatal(err)
	}
	s := mustSession(b, g,
		WithFaults(1),
		WithAlgorithm(Algorithm2),
		WithInputs(benchInputs(g.N())),
	)
	for i := 0; i < b.N; i++ {
		mustRunOK(b, s)
	}
}

// BenchmarkParallelSweep: the E5-style strategy sweep through the parallel
// sweep subsystem at GOMAXPROCS workers.
func BenchmarkParallelSweep(b *testing.B) {
	grid := eval.Grid{
		Graphs:     []eval.GraphCase{{Label: "figure1a", G: gen.Figure1a()}},
		Faults:     []int{1},
		Strategies: []string{"none", "silent", "tamper", "forge"},
		Placements: 2,
		Seed:       7,
	}
	for i := 0; i < b.N; i++ {
		res, err := eval.RunSweep(context.Background(), grid, 0)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.OK != res.Stats.Cells {
			b.Fatalf("sweep violations: %+v", res.Stats)
		}
	}
}

// Substrate micro-benchmarks.

func BenchmarkVertexConnectivity(b *testing.B) {
	g, err := gen.Harary(4, 12)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.VertexConnectivity() != 4 {
			b.Fatal("unexpected connectivity")
		}
	}
}

func BenchmarkDisjointPaths(b *testing.B) {
	g, err := gen.Complete(10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.DisjointPaths(0, 9, 9, nil)) != 9 {
			b.Fatal("path extraction failed")
		}
	}
}

func BenchmarkPhaseEnumeration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.Algo1Phases(10, 3)) != 176 {
			b.Fatal("phase count wrong")
		}
	}
}
