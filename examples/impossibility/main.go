// Impossibility: the necessity half of the paper (Theorem 4.1), live. We
// take a graph that *just* misses the tight conditions, let the library
// find the violated condition and build the matching proof construction
// (Lemma A.1 or A.2): a clone network 𝒢 is simulated, the faulty nodes
// replay their clones' transcripts, and the honest nodes — who cannot
// distinguish the executions — are forced into disagreement.
package main

import (
	"fmt"
	"log"

	"lbcast/internal/check"
	"lbcast/internal/eval"
	"lbcast/internal/graph"
)

func main() {
	// Take the paper's feasible 5-cycle and delete one edge: node degrees
	// drop below 2f and a small vertex cut appears.
	g := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4},
		// the closing edge 4-0 is missing: now a path graph
	})
	const f = 1

	fmt.Printf("graph: %s\n\n", g)
	fmt.Printf("feasibility for f=%d:\n%s\n\n", f, check.LocalBroadcast(g, f))

	found, err := eval.FindAttack(g, f, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("violated condition: %s\n", found.Reason)
	fmt.Printf("construction: Lemma %s clone network, %d scripted rounds\n\n", found.Lemma, found.Attack.Rounds)

	table, violated, err := eval.RunFoundAttack(g, found)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the three indistinguishable executions:")
	fmt.Print(table)
	if !violated {
		log.Fatal("expected a violation")
	}
	fmt.Println("\nExecution E2 splits the honest nodes: each side's view is identical")
	fmt.Println("to a world where the *other* side is faulty, so no algorithm — not")
	fmt.Println("just this one — can do better (Theorem 4.1).")

	// Contrast: restore the closing edge and the same adversary machinery
	// finds nothing to attack.
	whole := g.Clone()
	if err := whole.AddEdge(4, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := eval.FindAttack(whole, f, 0); err != nil {
		fmt.Printf("\nwith the edge 4-0 restored: %v\n", err)
	}
}
