// Hybrid: the equivocation trade-off of Section 6. Some faulty nodes may
// equivocate (behave like point-to-point attackers) while the rest are
// pinned by local broadcast. The required connectivity interpolates
// between the two models:
//
//	kappa >= floor(3(f-t)/2) + 2t + 1
//
// This example prints the interpolation for f = 3 and then runs
// Algorithm 3 on K5 against one genuinely equivocating fault.
package main

import (
	"context"
	"fmt"
	"log"

	"lbcast"
)

func main() {
	fmt.Println("connectivity required for f = 3, as t equivocators are allowed:")
	fmt.Println("  t | required kappa")
	for t := 0; t <= 3; t++ {
		// Reproduce the Theorem 6.1(i) formula via the checker's view on
		// complete graphs: find the smallest K_n whose connectivity
		// passes condition (i).
		req := 3*(3-t)/2 + 2*t + 1
		fmt.Printf("  %d | %d\n", t, req)
	}
	fmt.Println("  (t=0 is the local broadcast bound, t=f the point-to-point bound 2f+1)")
	fmt.Println()

	// K5 satisfies Theorem 6.1 for f = 1, t = 1: connectivity 4 >= 3 and
	// every single node has 4 >= 2f+1 = 3 neighbors.
	g, err := lbcast.Complete(5)
	if err != nil {
		log.Fatal(err)
	}
	report := lbcast.CheckHybrid(g, 1, 1)
	fmt.Printf("K5 hybrid feasibility (f=1, t=1):\n%s\n\n", report)
	if !report.OK {
		log.Fatal("K5 should satisfy the hybrid conditions")
	}

	// Node 4 is an equivocating fault: under the Hybrid transport it may
	// send different values to different neighbors (listed in
	// Equivocators), which local broadcast would make impossible.
	session, err := lbcast.NewSession(g,
		lbcast.WithFaults(1),
		lbcast.WithEquivocating(1),
		lbcast.WithAlgorithm(lbcast.Algorithm3),
		lbcast.WithModel(lbcast.Hybrid),
		lbcast.WithEquivocators(lbcast.NewSet(4)),
		lbcast.WithInputs(map[lbcast.NodeID]lbcast.Value{
			0: lbcast.One, 1: lbcast.Zero, 2: lbcast.One, 3: lbcast.One, 4: lbcast.Zero,
		}),
		lbcast.WithByzantine(map[lbcast.NodeID]lbcast.Node{
			4: lbcast.NewEquivocatorFault(g, 4, lbcast.PhaseRounds(g)),
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	result, err := session.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decisions with an equivocating fault at node 4:")
	for node, value := range result.Decisions {
		fmt.Printf("  node %d decided %s\n", node, value)
	}
	fmt.Printf("agreement=%v validity=%v (%d rounds)\n",
		result.Agreement, result.Validity, result.Rounds)
	if !result.OK() {
		log.Fatal("hybrid consensus failed")
	}
}
