// Radionet: the wireless scenario that motivates the local broadcast model
// (Sections 1–2 of the paper). Radios on a shared channel are physically
// incapable of equivocating — every transmission is overheard by all
// radios in range — so a mesh of sensor radios needs far less connectivity
// for Byzantine agreement than a wired point-to-point deployment.
//
// This example builds a ring-of-rings radio mesh, compares the fault
// tolerance the two models admit on it, and runs consensus with a
// compromised radio that lies in every relay.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lbcast"
)

func main() {
	// A 10-radio mesh: each radio hears its two ring neighbors and the
	// radio two hops away (a circulant C10(1,2) coverage pattern: degree
	// 4, connectivity 4).
	mesh, err := lbcast.Circulant(10, []int{1, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("radio mesh: %d radios, %d links\n\n", mesh.N(), mesh.M())

	lbF := lbcast.MaxFaultsLocalBroadcast(mesh)
	p2pF := lbcast.MaxFaultsPointToPoint(mesh)
	fmt.Printf("max compromised radios tolerated:\n")
	fmt.Printf("  shared-channel radios (local broadcast): f = %d\n", lbF)
	fmt.Printf("  wired point-to-point on the same topology: f = %d\n\n", p2pF)

	// Sensor readings: radios 0-4 detected the event (1), 5-9 did not.
	inputs := make(map[lbcast.NodeID]lbcast.Value, mesh.N())
	for i := 0; i < mesh.N(); i++ {
		v := lbcast.Zero
		if i < 5 {
			v = lbcast.One
		}
		inputs[lbcast.NodeID(i)] = v
	}

	// Radio 7 is compromised: it tampers with every reading it relays.
	// Because its transmissions are overheard by all its neighbors, the
	// tampering cannot be targeted — and Algorithm 2 (the mesh is
	// 2f-connected for f = 2) identifies and routes around it. The
	// session's context deadline bounds the wall-clock cost.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	session, err := lbcast.NewSession(mesh,
		lbcast.WithFaults(2),
		lbcast.WithAlgorithm(lbcast.Algorithm2),
		lbcast.WithInputs(inputs),
		lbcast.WithByzantine(map[lbcast.NodeID]lbcast.Node{
			7: lbcast.NewTamperFault(mesh, 7, lbcast.PhaseRounds(mesh), 99),
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	result, err := session.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("consensus on the event detection:")
	for i := 0; i < mesh.N(); i++ {
		if v, ok := result.Decisions[lbcast.NodeID(i)]; ok {
			fmt.Printf("  radio %d: read=%s agreed=%s\n", i, inputs[lbcast.NodeID(i)], v)
		}
	}
	fmt.Printf("\nagreement=%v validity=%v in %d rounds (%d transmissions)\n",
		result.Agreement, result.Validity, result.Rounds, result.Transmissions)
	if !result.OK() {
		log.Fatal("consensus failed")
	}
}
