// Faultid: the fault-identification tool behind the efficient Algorithm 2
// (Section 5.3 / Appendix C). On a 2f-connected graph, every message a
// faulty node transmits is reliably learned by every other node — its
// neighbors all overhear it and relay reports along 2f vertex-disjoint
// paths — so honest nodes can catch a tampering relay red-handed, become
// "type A" (knowing the whole fault set), and finish consensus in O(n)
// rounds instead of Algorithm 1's exponentially many phases.
//
// This example plants a deterministic tamperer on the 5-cycle, runs
// Algorithm 2 via the low-level engine, and shows which nodes identified
// the fault.
package main

import (
	"fmt"
	"log"

	"lbcast/internal/adversary"
	"lbcast/internal/core"
	"lbcast/internal/graph"
	"lbcast/internal/graph/gen"
	"lbcast/internal/sim"
)

func main() {
	g := gen.Figure1a() // 5-cycle: 2-connected = 2f-connected for f = 1
	const f = 1
	faulty := graph.NodeID(2)

	// A deterministic tamperer: flips the value of every message it
	// relays. All its neighbors overhear every lie.
	tamper := adversary.NewTamper(g, faulty, core.PhaseRounds(g.N()), 7)
	tamper.FlipProb = 1
	tamper.DropProb = 0

	inputs := []sim.Value{sim.One, sim.One, sim.Zero, sim.One, sim.One}
	nodes := make([]sim.Node, g.N())
	var honest []*core.EfficientNode
	for i := range nodes {
		u := graph.NodeID(i)
		if u == faulty {
			nodes[i] = tamper
			continue
		}
		en := core.NewEfficientNode(g, f, u, inputs[i])
		nodes[i] = en
		honest = append(honest, en)
	}

	eng, err := sim.NewEngine(sim.Config{Topology: sim.GraphTopology{G: g}}, nodes)
	if err != nil {
		log.Fatal(err)
	}
	eng.Run(core.EfficientRounds(g.N()))

	fmt.Printf("graph: %s, fault bound f=%d, tamperer at node %d\n\n", g, f, faulty)
	fmt.Println("after phase 2 (transcript reports + identification walks):")
	for _, h := range honest {
		kind := "B (decides by majority of reliably received inputs)"
		if h.TypeA() {
			kind = "A (knows the full fault set, adopts a type B decision)"
		}
		dec, ok := h.Decision()
		fmt.Printf("  node %d: identified=%v type %s\n", h.ID(), h.Identified(), kind)
		if !ok {
			log.Fatalf("node %d did not decide", h.ID())
		}
		fmt.Printf("          decided %s\n", dec)
	}
	m := eng.Metrics()
	fmt.Printf("\nfinished in %d rounds (3 flooding phases), %d transmissions\n",
		m.Rounds, m.Transmissions)
	fmt.Printf("Algorithm 1 on the same instance would run %d rounds (%d phases)\n",
		core.Algo1Rounds(g.N(), f), len(core.Algo1Phases(g.N(), f)))
}
