// Quickstart: run Byzantine consensus on the paper's Figure 1(a) graph —
// the 5-cycle, which tolerates one Byzantine fault under local broadcast
// even though the classical point-to-point model would require
// 3-connectivity and 4 nodes minimum.
package main

import (
	"context"
	"fmt"
	"log"

	"lbcast"
)

func main() {
	// The 5-cycle from Figure 1(a) of the paper.
	g := lbcast.Figure1a()

	// Verify the tight feasibility conditions for f = 1:
	// min degree >= 2f and connectivity >= floor(3f/2)+1.
	report := lbcast.CheckLocalBroadcast(g, 1)
	fmt.Printf("feasibility for f=1:\n%s\n\n", report)
	if !report.OK {
		log.Fatal("graph does not satisfy the conditions")
	}

	// Build a session running Algorithm 1 with node 2 Byzantine (a
	// message-tampering relay). The session validates the configuration
	// once and can be run any number of times; each run stops as soon as
	// every honest node has decided instead of burning Algorithm 1's
	// exponential worst-case round budget.
	session, err := lbcast.NewSession(g,
		lbcast.WithFaults(1),
		lbcast.WithAlgorithm(lbcast.Algorithm1),
		lbcast.WithInputs(map[lbcast.NodeID]lbcast.Value{
			0: lbcast.Zero, 1: lbcast.One, 2: lbcast.One, 3: lbcast.Zero, 4: lbcast.One,
		}),
		lbcast.WithByzantine(map[lbcast.NodeID]lbcast.Node{
			2: lbcast.NewTamperFault(g, 2, lbcast.PhaseRounds(g), 42),
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	result, err := session.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("honest decisions:")
	for node, value := range result.Decisions {
		fmt.Printf("  node %d decided %s\n", node, value)
	}
	fmt.Printf("agreement=%v validity=%v termination=%v\n",
		result.Agreement, result.Validity, result.Termination)
	fmt.Printf("cost: %d rounds (budget %d), %d transmissions\n",
		result.Rounds, result.RoundBudget, result.Transmissions)
}
