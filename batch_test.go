package lbcast

import (
	"context"
	"reflect"
	"testing"
)

func alternating(n int) map[NodeID]Value {
	m := make(map[NodeID]Value, n)
	for i := 0; i < n; i++ {
		m[NodeID(i)] = Value(i % 2)
	}
	return m
}

func constant(n int, v Value) map[NodeID]Value {
	m := make(map[NodeID]Value, n)
	for i := 0; i < n; i++ {
		m[NodeID(i)] = v
	}
	return m
}

// TestRunBatchMatchesSessions checks the public batch API end to end:
// batched decisions, properties, and round counts equal per-instance
// Session runs, with per-instance fault patterns.
func TestRunBatchMatchesSessions(t *testing.T) {
	g := Figure1a()
	n := g.N()
	mkInstances := func() []BatchInstance {
		return []BatchInstance{
			{Inputs: alternating(n)},
			{Inputs: constant(n, One)},
			{Inputs: alternating(n), Byzantine: map[NodeID]Node{2: NewSilentFault(2)}},
			{Inputs: constant(n, Zero), Byzantine: map[NodeID]Node{4: NewTamperFault(g, 4, PhaseRounds(g), 42)}},
		}
	}
	batch, err := RunBatch(g, mkInstances(), WithFaults(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(batch.Results))
	}
	for i, inst := range mkInstances() {
		s, err := NewSession(g, WithFaults(1), WithInputs(inst.Inputs), WithByzantine(inst.Byzantine))
		if err != nil {
			t.Fatal(err)
		}
		solo, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		got, want := batch.Results[i], solo
		if !reflect.DeepEqual(got.Decisions, want.Decisions) ||
			got.Agreement != want.Agreement || got.Validity != want.Validity ||
			got.Termination != want.Termination || got.Rounds != want.Rounds ||
			got.RoundBudget != want.RoundBudget {
			t.Errorf("instance %d diverges:\nbatch:   %+v\nsession: %+v", i, got, want)
		}
	}
	if !batch.OK() {
		t.Errorf("batch.OK() = false: %+v", batch)
	}
}

// TestRunBatchHybridEquivocator covers the hybrid model in a batch: the
// equivocating adversary sends per-neighbor unicasts, exercising the
// non-broadcast multiplexing path.
func TestRunBatchHybridEquivocator(t *testing.T) {
	g, err := Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	mkInstances := func() []BatchInstance {
		return []BatchInstance{
			{Inputs: alternating(n)},
			{Inputs: alternating(n), Byzantine: map[NodeID]Node{4: NewEquivocatorFault(g, 4, PhaseRounds(g))}},
		}
	}
	opts := []Option{
		WithFaults(1), WithEquivocating(1), WithAlgorithm(Algorithm3),
		WithModel(Hybrid), WithEquivocators(NewSet(4)),
	}
	batch, err := RunBatch(g, mkInstances(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i, inst := range mkInstances() {
		s, err := NewSession(g, append(opts, WithInputs(inst.Inputs), WithByzantine(inst.Byzantine))...)
		if err != nil {
			t.Fatal(err)
		}
		solo, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch.Results[i].Decisions, solo.Decisions) ||
			batch.Results[i].Rounds != solo.Rounds {
			t.Errorf("hybrid instance %d diverges:\nbatch:   %+v\nsession: %+v", i, batch.Results[i], solo)
		}
	}
}

// TestNewBatchRejectsPerInstanceOptions pins the API contract that inputs
// and Byzantine overrides are per instance.
func TestNewBatchRejectsPerInstanceOptions(t *testing.T) {
	g := Figure1a()
	insts := []BatchInstance{{Inputs: alternating(g.N())}}
	if _, err := NewBatch(g, insts, WithFaults(1), WithInputs(alternating(g.N()))); err == nil {
		t.Error("WithInputs accepted on a batch")
	}
	if _, err := NewBatch(g, insts, WithFaults(1),
		WithByzantine(map[NodeID]Node{2: NewSilentFault(2)})); err == nil {
		t.Error("WithByzantine accepted on a batch")
	}
}

// TestBatchReusable checks a Batch can be Run multiple times with
// identical results (stateless instances).
func TestBatchReusable(t *testing.T) {
	g := Figure1b()
	insts := []BatchInstance{
		{Inputs: alternating(g.N())},
		{Inputs: constant(g.N(), Zero), Byzantine: map[NodeID]Node{1: NewSilentFault(1)}},
	}
	b, err := NewBatch(g, insts, WithFaults(2))
	if err != nil {
		t.Fatal(err)
	}
	first, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	second, err := b.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("repeated batch runs diverge:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}
